// Serving-layer benchmark. This file is in the external test package
// (package toporouting_test) because internal/server imports the root
// toporouting facade — importing it from the internal test package
// (bench_test.go) would be an import cycle.
package toporouting_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"toporouting"
	"toporouting/internal/server"
)

func benchServeTopology(b *testing.B, cfg server.Config) {
	b.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	}()
	body := []byte(`{"dist":"uniform","n":200,"seed":1}`)
	url := ts.URL + "/v1/topology"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkServeTopology measures one synchronous topology build through
// the full serving path: HTTP round-trip, JSON decode, admission queue,
// worker-pool execution, ΘALG build, JSON encode — with tracing off (nil
// Tracer). It is the end-to-end latency floor of the daemon's hot endpoint,
// and the zero-overhead reference the Traced variant is gated against.
func BenchmarkServeTopology(b *testing.B) {
	benchServeTopology(b, server.Config{Workers: 1})
}

// BenchmarkServeTopologyMetrics turns on the metrics scope (counters,
// gauges, histograms threaded through the build) but not span tracing:
// the cost of the pre-existing instrumentation, and the reference the
// Traced variant is measured against.
func BenchmarkServeTopologyMetrics(b *testing.B) {
	benchServeTopology(b, server.Config{
		Workers:   1,
		Telemetry: toporouting.NewTelemetry(),
	})
}

// BenchmarkServeTopologyTraced additionally mints one span tree per
// request — root span, admission wait, job run, build phases, encode —
// with ring retention. It differs from BenchmarkServeTopologyMetrics only
// in the Tracer, so the gate's ratio bound (scripts/bench.sh, -ratio
// Traced/Metrics ≤ 1.05) isolates and pins the span-tracing overhead,
// keeping it cheap enough to leave on in production.
func BenchmarkServeTopologyTraced(b *testing.B) {
	tel := toporouting.NewTelemetry()
	benchServeTopology(b, server.Config{
		Workers:   1,
		Telemetry: tel,
		Tracer:    toporouting.NewTracer(tel, toporouting.NewTraceRing(32, 64)),
	})
}
