// Serving-layer benchmark. This file is in the external test package
// (package toporouting_test) because internal/server imports the root
// toporouting facade — importing it from the internal test package
// (bench_test.go) would be an import cycle.
package toporouting_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"toporouting"
	"toporouting/internal/server"
	"toporouting/internal/session"
)

func newBenchServer(b *testing.B, cfg server.Config) (*server.Server, *httptest.Server) {
	b.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	})
	return s, ts
}

func benchServeTopology(b *testing.B, cfg server.Config, body []byte) {
	b.Helper()
	_, ts := newBenchServer(b, cfg)
	url := ts.URL + "/v1/topology"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkServeTopology measures one synchronous topology build through
// the full serving path: HTTP round-trip, pooled JSON decode, admission
// queue, worker-pool execution, arena-backed ΘALG build, streaming JSON
// encode — with tracing off (nil Tracer) and the response cache disabled,
// so every iteration pays the full cold path. It is the end-to-end latency
// floor of the daemon's hot endpoint, the zero-overhead reference the
// Traced variant is gated against, and the denominator of the CacheHit
// ratio gate.
func BenchmarkServeTopology(b *testing.B) {
	benchServeTopology(b, server.Config{Workers: 1, CacheBytes: -1}, []byte(`{"dist":"uniform","n":200,"seed":1}`))
}

// BenchmarkServeTopologyCacheHit repeats one request against the default
// digest-keyed response cache: after the first build, every iteration is a
// digest + LRU lookup + memoized byte write. Gated against the cold path
// (bench.sh ratio: CacheHit/ServeTopology ≤ 0.1).
func BenchmarkServeTopologyCacheHit(b *testing.B) {
	benchServeTopology(b, server.Config{Workers: 1}, []byte(`{"dist":"uniform","n":200,"seed":1}`))
}

// BenchmarkServeTopologyN2000 is the rebuild-per-request cost at n=2000 —
// the stateless baseline the hosted-session event path is gated against
// (bench.sh ratio: SessionApplyEvent/ServeTopologyN2000 ≤ 0.2, i.e. the
// session path must stay at least 5x faster than rebuilding).
func BenchmarkServeTopologyN2000(b *testing.B) {
	benchServeTopology(b, server.Config{Workers: 1, CacheBytes: -1}, []byte(`{"dist":"uniform","n":2000,"seed":1}`))
}

// BenchmarkServeTopologyMetrics turns on the metrics scope (counters,
// gauges, histograms threaded through the build) but not span tracing:
// the cost of the pre-existing instrumentation, and the reference the
// Traced variant is measured against. Cache off: this measures the cold
// path's instrumentation, not cache lookups.
func BenchmarkServeTopologyMetrics(b *testing.B) {
	benchServeTopology(b, server.Config{
		Workers:    1,
		CacheBytes: -1,
		Telemetry:  toporouting.NewTelemetry(),
	}, []byte(`{"dist":"uniform","n":200,"seed":1}`))
}

// BenchmarkServeTopologyTraced additionally mints one span tree per
// request — root span, admission wait, job run, build phases, encode —
// with ring retention. It differs from BenchmarkServeTopologyMetrics only
// in the Tracer, so the gate's ratio bound (scripts/bench.sh, -ratio
// Traced/Metrics ≤ 1.05) isolates and pins the span-tracing overhead,
// keeping it cheap enough to leave on in production.
func BenchmarkServeTopologyTraced(b *testing.B) {
	tel := toporouting.NewTelemetry()
	benchServeTopology(b, server.Config{
		Workers:    1,
		CacheBytes: -1,
		Telemetry:  tel,
		Tracer:     toporouting.NewTracer(tel, toporouting.NewTraceRing(32, 64)),
	}, []byte(`{"dist":"uniform","n":200,"seed":1}`))
}

// benchCreateSession hosts an n=2000 session over the wire and returns its
// id. Event rate limiting is disabled — the benchmarks measure the apply
// and delta paths, not the token bucket.
func benchCreateSession(b *testing.B, ts *httptest.Server) string {
	b.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(`{"dist":"uniform","n":2000,"seed":1}`)))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("create session: status %d, body %s", resp.StatusCode, raw)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &created); err != nil {
		b.Fatal(err)
	}
	return created.ID
}

// postEvents streams one NDJSON batch and drains the echoed results.
func postEvents(b *testing.B, url string, batch []byte) {
	b.Helper()
	resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(batch))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		b.Fatalf("events: status %d, body %s", resp.StatusCode, raw)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
}

// BenchmarkSessionApplyEvent is per-event cost of the hosted churn path at
// n=2000: NDJSON decode, token check, single-writer 2D-ball repair, delta
// recording, result echo — batched 200 events per request so the HTTP
// round-trip amortizes the way a real event stream does. Gated against
// BenchmarkServeTopologyN2000 (must stay ≥5x faster than rebuilding).
func BenchmarkSessionApplyEvent(b *testing.B) {
	_, ts := newBenchServer(b, server.Config{
		Workers:  1,
		Sessions: session.Config{EventRate: -1, IdleTTL: -1},
	})
	id := benchCreateSession(b, ts)
	url := ts.URL + "/v1/sessions/" + id + "/events"

	// Pre-encode one NDJSON line per event; node ids stay valid because
	// moves never change the id space. Batches are assembled client-side
	// from exactly the lines needed, so the op count matches b.N and
	// ns/op is a true per-event figure.
	rng := rand.New(rand.NewSource(7))
	const batchSize = 200
	lines := make([][]byte, 1024)
	for i := range lines {
		line, err := json.Marshal(session.Event{Op: "move", Node: rng.Intn(2000), X: rng.Float64(), Y: rng.Float64()})
		if err != nil {
			b.Fatal(err)
		}
		lines[i] = append(line, '\n')
	}
	var batch bytes.Buffer
	send := func(from, count int) {
		batch.Reset()
		for i := 0; i < count; i++ {
			batch.Write(lines[(from+i)%len(lines)])
		}
		postEvents(b, url, batch.Bytes())
	}
	send(0, batchSize) // warm-up: encode pools, ring, connection reuse
	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		n := batchSize
		if rem := b.N - sent; rem < n {
			n = rem
		}
		send(sent, n)
		sent += n
	}
}

// BenchmarkSessionDelta is the conditional-GET delta path: a reader two
// generations behind fetches the compact records and the new ETag. This is
// the steady-state poll a session client rides between snapshots.
func BenchmarkSessionDelta(b *testing.B) {
	_, ts := newBenchServer(b, server.Config{
		Workers:  1,
		Sessions: session.Config{EventRate: -1, IdleTTL: -1},
	})
	id := benchCreateSession(b, ts)

	rng := rand.New(rand.NewSource(9))
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < 8; i++ {
		_ = enc.Encode(session.Event{Op: "move", Node: rng.Intn(2000), X: rng.Float64(), Y: rng.Float64()})
	}
	postEvents(b, ts.URL+"/v1/sessions/"+id+"/events", buf.Bytes())

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("If-None-Match", "6") // two generations behind gen 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
