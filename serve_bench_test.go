// Serving-layer benchmark. This file is in the external test package
// (package toporouting_test) because internal/server imports the root
// toporouting facade — importing it from the internal test package
// (bench_test.go) would be an import cycle.
package toporouting_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"toporouting/internal/server"
)

// BenchmarkServeTopology measures one synchronous topology build through
// the full serving path: HTTP round-trip, JSON decode, admission queue,
// worker-pool execution, ΘALG build, JSON encode. It is the end-to-end
// latency floor of the daemon's hot endpoint.
func BenchmarkServeTopology(b *testing.B) {
	s := server.New(server.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	}()
	body := []byte(`{"dist":"uniform","n":200,"seed":1}`)
	url := ts.URL + "/v1/topology"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
