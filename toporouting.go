// Package toporouting is a library for local topology control and
// competitive routing in ad hoc wireless networks, reproducing "On Local
// Algorithms for Topology Control and Routing in Ad Hoc Networks" (Jia,
// Rajaraman, Scheideler; SPAA 2003).
//
// The package exposes three layers:
//
//   - Topology control: BuildNetwork runs the two-phase local algorithm
//     ΘALG over a planar point set, producing a connected, constant-degree
//     topology with O(1) energy-stretch (Theorem 2.2 of the paper).
//     BuildNetworkDistributed runs the same algorithm as a faithful
//     3-round message-passing protocol.
//
//   - Medium access: the randomized symmetry-breaking MAC (Section 3.3)
//     and the honeycomb algorithm for fixed transmission strength
//     (Section 3.4), both reachable through Simulate.
//
//   - Routing: NewRouter exposes the (T,γ)-balancing algorithm
//     (Section 3.2), a local height-balancing rule with edge costs that is
//     constant-competitive in throughput and average cost against any
//     offline schedule (Theorem 3.1).
//
// The experiment harness behind EXPERIMENTS.md is reachable through
// RunExperiment and the benchmarks in bench_test.go.
package toporouting

import (
	"errors"
	"fmt"
	"math"

	"toporouting/internal/geom"
	"toporouting/internal/graph"
	"toporouting/internal/interference"
	"toporouting/internal/pointset"
	"toporouting/internal/stretch"
	"toporouting/internal/topology"
	"toporouting/internal/unitdisk"
)

// Point is a node position in the 2-D Euclidean plane.
type Point = geom.Point

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Options configures BuildNetwork.
type Options struct {
	// Theta is the ΘALG cone angle in (0, π/3]; 0 selects π/6.
	Theta float64
	// Range is the maximum transmission range D. 0 selects
	// 1.3 × the critical connectivity range of the point set.
	Range float64
	// Kappa is the path-loss exponent for energy costs (κ ≥ 2 per the
	// power-attenuation model); 0 selects 2.
	Kappa float64
	// Delta is the interference guard zone Δ > 0; 0 selects 0.5.
	Delta float64
	// Telemetry, when non-nil, records ΘALG build-phase timings and
	// counters (and trace events when the scope has a sink). nil disables
	// instrumentation at zero cost.
	Telemetry *Telemetry
}

func (o Options) withDefaults(pts []Point) (Options, error) {
	if o.Theta == 0 {
		o.Theta = topology.DefaultTheta
	}
	if o.Theta <= 0 || o.Theta > math.Pi/3+1e-12 {
		return o, fmt.Errorf("toporouting: theta %v outside (0, π/3]", o.Theta)
	}
	if o.Kappa == 0 {
		o.Kappa = 2
	}
	if o.Kappa < 2 {
		return o, fmt.Errorf("toporouting: kappa %v below 2", o.Kappa)
	}
	if o.Delta == 0 {
		o.Delta = interference.DefaultDelta
	}
	if o.Delta <= 0 {
		return o, fmt.Errorf("toporouting: delta %v must be positive", o.Delta)
	}
	if o.Range == 0 {
		o.Range = unitdisk.CriticalRange(pts) * 1.3
	}
	if o.Range <= 0 {
		return o, fmt.Errorf("toporouting: range %v must be positive", o.Range)
	}
	return o, nil
}

// Network is a built topology: the bounded-degree graph N of ΘALG over a
// point set, together with the transmission graph G* it was carved from.
type Network struct {
	opts  Options
	top   *topology.Topology
	gstar *graph.Graph
}

// BuildNetwork runs ΘALG over the given points. It returns an error for
// invalid options or fewer than two points; it does not require G* to be
// connected, but stretch evaluation reports disconnected pairs.
func BuildNetwork(points []Point, opts Options) (*Network, error) {
	if len(points) < 2 {
		return nil, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, err
	}
	top := topology.BuildTheta(points, topology.Config{Theta: o.Theta, Range: o.Range, Telemetry: o.Telemetry})
	return &Network{
		opts:  o,
		top:   top,
		gstar: unitdisk.Build(points, o.Range),
	}, nil
}

// ProtocolStats reports the message traffic of the distributed protocol.
type ProtocolStats = topology.ProtocolStats

// BuildNetworkDistributed builds the same topology via the faithful
// 3-round message-passing protocol (Position / Neighborhood / Connection
// broadcasts), returning the per-round message statistics alongside.
func BuildNetworkDistributed(points []Point, opts Options) (*Network, ProtocolStats, error) {
	if len(points) < 2 {
		return nil, ProtocolStats{}, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, ProtocolStats{}, err
	}
	top, st := topology.BuildThetaDistributed(points, topology.Config{Theta: o.Theta, Range: o.Range, Telemetry: o.Telemetry})
	return &Network{
		opts:  o,
		top:   top,
		gstar: unitdisk.Build(points, o.Range),
	}, st, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.top.N.N() }

// Points returns the node positions. Callers must not mutate the slice.
func (nw *Network) Points() []Point { return nw.top.Pts }

// Options returns the effective options the network was built with
// (defaults resolved).
func (nw *Network) Options() Options { return nw.opts }

// Edges returns the undirected edges of the topology N as [u, v] pairs
// with u < v, sorted.
func (nw *Network) Edges() [][2]int {
	es := nw.top.N.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// NumEdges returns the number of edges of N.
func (nw *Network) NumEdges() int { return nw.top.N.NumEdges() }

// TransmissionEdges returns the edges of the underlying transmission graph
// G* (all pairs within range) as [u, v] pairs with u < v, sorted. G* is
// typically far denser than N.
func (nw *Network) TransmissionEdges() [][2]int {
	es := nw.gstar.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// Degree returns the degree of node v in N.
func (nw *Network) Degree(v int) int { return nw.top.N.Degree(v) }

// MaxDegree returns the maximum degree of N; Lemma 2.1 bounds it by
// DegreeBound.
func (nw *Network) MaxDegree() int { return nw.top.N.MaxDegree() }

// DegreeBound returns the 4π/θ degree bound of Lemma 2.1.
func (nw *Network) DegreeBound() int { return nw.top.DegreeBound() }

// Connected reports whether N is connected.
func (nw *Network) Connected() bool { return nw.top.N.Connected() }

// TransmissionGraphConnected reports whether the underlying G* is
// connected (the paper's standing assumption).
func (nw *Network) TransmissionGraphConnected() bool { return nw.gstar.Connected() }

// StretchSummary reports a stretch evaluation.
type StretchSummary struct {
	// Max is the stretch (maximum ratio); +Inf if any pair reachable in
	// G* is unreachable in N.
	Max float64
	// Mean and P95 summarize the ratio distribution.
	Mean, P95 float64
	// Pairs is the number of measured pairs.
	Pairs int
}

// EnergyStretch measures the energy-stretch of N relative to G* under the
// network's κ (Theorem 2.2 claims O(1)). maxSources bounds the number of
// shortest-path trees (0 = exact, all sources).
func (nw *Network) EnergyStretch(maxSources int) StretchSummary {
	r := stretch.Evaluate(nw.top.N, nw.gstar, nw.top.Pts, stretch.Energy, stretch.Options{
		Kappa:   nw.opts.Kappa,
		Sources: headSources(nw.N(), maxSources),
	})
	return StretchSummary{Max: r.Max, Mean: r.Mean, P95: r.P95, Pairs: r.Pairs}
}

// DistanceStretch measures the distance-stretch of N relative to G*
// (Theorem 2.7 claims O(1) for civilized point sets).
func (nw *Network) DistanceStretch(maxSources int) StretchSummary {
	r := stretch.Evaluate(nw.top.N, nw.gstar, nw.top.Pts, stretch.Distance, stretch.Options{
		Sources: headSources(nw.N(), maxSources),
	})
	return StretchSummary{Max: r.Max, Mean: r.Mean, P95: r.P95, Pairs: r.Pairs}
}

func headSources(n, max int) []int {
	if max <= 0 || max >= n {
		return nil
	}
	out := make([]int, max)
	for i := range out {
		out[i] = i * n / max
	}
	return out
}

// InterferenceNumber computes the interference number I of N under the
// network's guard zone Δ (Lemma 2.10: O(log n) whp for uniform random
// nodes).
func (nw *Network) InterferenceNumber() int {
	m := interference.NewModel(nw.opts.Delta)
	return m.Number(nw.top.Pts, nw.top.N.Edges())
}

// TransmissionInterferenceNumber computes the interference number of the
// full transmission graph G*. Comparing it against InterferenceNumber shows
// why topology control matters: the dense graph's links interfere far more,
// so a MAC layer can use only a tiny fraction of them concurrently. For
// graphs beyond 2000 edges the value is computed over a 500-edge sample
// (a lower bound on the true maximum).
func (nw *Network) TransmissionInterferenceNumber() int {
	m := interference.NewModel(nw.opts.Delta)
	edges := nw.gstar.Edges()
	if len(edges) > 2000 {
		return m.NumberSampled(nw.top.Pts, edges, 500)
	}
	return m.Number(nw.top.Pts, edges)
}

// MinEnergyRoute returns the node sequence of the least-energy path from u
// to v in N, or nil if v is unreachable.
func (nw *Network) MinEnergyRoute(u, v int) []int {
	_, parent := nw.top.N.Dijkstra(u, nw.top.EnergyCost(nw.opts.Kappa))
	return graph.PathFromParents(parent, u, v)
}

// ThetaPath returns the θ-path replacement (Section 2.4) for a G* edge
// (u, v): a walk in N from u to v. It returns an error if |uv| exceeds the
// transmission range.
func (nw *Network) ThetaPath(u, v int) ([]int, error) {
	if geom.Dist(nw.top.Pts[u], nw.top.Pts[v]) > nw.opts.Range {
		return nil, fmt.Errorf("toporouting: (%d,%d) is not a transmission-graph edge", u, v)
	}
	return nw.top.ThetaPathNodes(u, v), nil
}

// EnergyCost returns the energy |uv|^κ of a direct transmission between
// nodes u and v.
func (nw *Network) EnergyCost(u, v int) float64 {
	return geom.EnergyCost(nw.top.Pts[u], nw.top.Pts[v], nw.opts.Kappa)
}

// GeneratePoints produces one of the built-in node distributions:
// "uniform", "civilized", "clustered", "grid", "expchain", "ring",
// "bridge". Results are deterministic in (kind, n, seed).
func GeneratePoints(kind string, n int, seed int64) ([]Point, error) {
	kinds := map[string]pointset.Kind{
		"uniform":   pointset.KindUniform,
		"civilized": pointset.KindCivilized,
		"clustered": pointset.KindClustered,
		"grid":      pointset.KindGrid,
		"expchain":  pointset.KindExponential,
		"ring":      pointset.KindRing,
		"bridge":    pointset.KindBridge,
	}
	k, ok := kinds[kind]
	if !ok {
		return nil, fmt.Errorf("toporouting: unknown distribution %q", kind)
	}
	if n < 2 {
		return nil, errors.New("toporouting: need n ≥ 2")
	}
	return pointset.Generate(k, n, seed), nil
}
