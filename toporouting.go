// Package toporouting is a library for local topology control and
// competitive routing in ad hoc wireless networks, reproducing "On Local
// Algorithms for Topology Control and Routing in Ad Hoc Networks" (Jia,
// Rajaraman, Scheideler; SPAA 2003).
//
// The package exposes three layers:
//
//   - Topology control: BuildNetwork runs the two-phase local algorithm
//     ΘALG over a planar point set, producing a connected, constant-degree
//     topology with O(1) energy-stretch (Theorem 2.2 of the paper).
//     BuildNetworkDistributed runs the same algorithm as a faithful
//     3-round message-passing protocol.
//
//   - Medium access: the randomized symmetry-breaking MAC (Section 3.3)
//     and the honeycomb algorithm for fixed transmission strength
//     (Section 3.4), both reachable through Simulate.
//
//   - Routing: NewRouter exposes the (T,γ)-balancing algorithm
//     (Section 3.2), a local height-balancing rule with edge costs that is
//     constant-competitive in throughput and average cost against any
//     offline schedule (Theorem 3.1).
//
// The experiment harness behind EXPERIMENTS.md is reachable through
// RunExperiment and the benchmarks in bench_test.go.
package toporouting

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"toporouting/internal/geom"
	"toporouting/internal/graph"
	"toporouting/internal/interference"
	"toporouting/internal/pointset"
	"toporouting/internal/stretch"
	"toporouting/internal/topology"
	"toporouting/internal/unitdisk"
)

// Point is a node position in the 2-D Euclidean plane.
type Point = geom.Point

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Options configures BuildNetwork.
type Options struct {
	// Theta is the ΘALG cone angle in (0, π/3]; 0 selects π/6.
	Theta float64
	// Range is the maximum transmission range D. 0 selects
	// 1.3 × the critical connectivity range of the point set.
	Range float64
	// Kappa is the path-loss exponent for energy costs (κ ≥ 2 per the
	// power-attenuation model); 0 selects 2.
	Kappa float64
	// Delta is the interference guard zone Δ > 0; 0 selects 0.5.
	Delta float64
	// Telemetry, when non-nil, records ΘALG build-phase timings and
	// counters (and trace events when the scope has a sink). nil disables
	// instrumentation at zero cost.
	Telemetry *Telemetry
}

func (o Options) withDefaults(pts []Point) (Options, error) {
	if o.Theta == 0 {
		o.Theta = topology.DefaultTheta
	}
	if o.Theta <= 0 || o.Theta > math.Pi/3+1e-12 {
		return o, fmt.Errorf("toporouting: theta %v outside (0, π/3]", o.Theta)
	}
	if o.Kappa == 0 {
		o.Kappa = 2
	}
	if o.Kappa < 2 {
		return o, fmt.Errorf("toporouting: kappa %v below 2", o.Kappa)
	}
	if o.Delta == 0 {
		o.Delta = interference.DefaultDelta
	}
	if o.Delta <= 0 {
		return o, fmt.Errorf("toporouting: delta %v must be positive", o.Delta)
	}
	if o.Range == 0 {
		o.Range = unitdisk.CriticalRange(pts) * 1.3
	}
	if o.Range <= 0 {
		return o, fmt.Errorf("toporouting: range %v must be positive", o.Range)
	}
	return o, nil
}

// Network is a built topology: the bounded-degree graph N of ΘALG over a
// point set, together with the transmission graph G* it was carved from.
// G* is materialized lazily on first use — no /v1/topology field needs it,
// so a build that only reports N never pays the dense unit-disk scan.
type Network struct {
	opts Options
	top  *topology.Topology
	// gstarOnce guards the lazy G* build; access through transmissionGraph.
	gstarOnce sync.Once
	gstarG    *graph.Graph
	// workers is the pool cap the network was built with (0 = sequential);
	// interference-set computations inherit it.
	workers int
}

// transmissionGraph returns the unit-disk transmission graph G*, building
// it on first use. Safe for concurrent use.
func (nw *Network) transmissionGraph() *graph.Graph {
	nw.gstarOnce.Do(func() {
		nw.gstarG = unitdisk.Build(nw.top.Pts, nw.opts.Range)
	})
	return nw.gstarG
}

// BuildNetwork runs ΘALG over the given points. It returns an error for
// invalid options or fewer than two points; it does not require G* to be
// connected, but stretch evaluation reports disconnected pairs.
func BuildNetwork(points []Point, opts Options) (*Network, error) {
	if len(points) < 2 {
		return nil, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, err
	}
	top := topology.BuildTheta(points, topology.Config{Theta: o.Theta, Range: o.Range, Telemetry: o.Telemetry})
	return &Network{
		opts: o,
		top:  top,
	}, nil
}

// BuildNetworkParallel is BuildNetwork with the per-node phase-1 sector
// selection fanned out over a worker pool (workers ≤ 0 selects
// GOMAXPROCS). The resulting topology is identical to BuildNetwork's for
// every worker count; only wall-clock time changes.
func BuildNetworkParallel(points []Point, opts Options, workers int) (*Network, error) {
	if len(points) < 2 {
		return nil, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, err
	}
	top := topology.BuildThetaParallel(points, topology.Config{Theta: o.Theta, Range: o.Range, Telemetry: o.Telemetry}, workers)
	return &Network{
		opts:    o,
		top:     top,
		workers: workers,
	}, nil
}

// BuildNetworkContext is BuildNetwork under a cancellation context:
// the ΘALG build checks ctx between row batches of each phase, so a caller
// whose request was cancelled (client disconnect, deadline, server drain)
// stops the build promptly and receives ctx.Err(). workers > 0 additionally
// fans phase 1 out over that many workers (BuildNetworkParallel semantics);
// ≤ 0 keeps the sequential builder. The topology is identical to
// BuildNetwork's for every worker count.
func BuildNetworkContext(ctx context.Context, points []Point, opts Options, workers int) (*Network, error) {
	if len(points) < 2 {
		return nil, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, err
	}
	top, err := topology.BuildThetaContext(ctx, points, topology.Config{Theta: o.Theta, Range: o.Range, Telemetry: o.Telemetry}, workers)
	if err != nil {
		return nil, err
	}
	return &Network{
		opts:    o,
		top:     top,
		workers: workers,
	}, nil
}

// BuildArena is reusable backing storage for BuildNetworkArenaContext: the
// spatial index, sector tables, adjacency slabs, and validation scratch of
// a ΘALG build, recycled across builds. Serving layers pool arenas to make
// the per-request build path effectively allocation-free. An arena is not
// safe for concurrent builds; the zero value (via NewBuildArena) is ready
// to use.
type BuildArena struct {
	a topology.BuildArena
}

// NewBuildArena returns an empty arena.
func NewBuildArena() *BuildArena { return new(BuildArena) }

// Footprint approximates the arena's retained backing size in bytes, so
// pools can drop arenas that grew serving an outsized request.
func (ar *BuildArena) Footprint() int { return ar.a.Footprint() }

// BuildNetworkArenaContext is BuildNetworkContext building into ar's
// reusable storage. The resulting network is bit-identical to
// BuildNetworkContext's; only allocation behavior differs. The returned
// Network aliases the arena's memory: it is valid only until the next build
// with ar, and must not be retained past that point (the lazily built
// transmission graph G* is heap-allocated and exempt, but the topology
// and its graphs are not).
func BuildNetworkArenaContext(ctx context.Context, points []Point, opts Options, workers int, ar *BuildArena) (*Network, error) {
	if len(points) < 2 {
		return nil, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, err
	}
	top, err := topology.BuildThetaArena(ctx, points, topology.Config{Theta: o.Theta, Range: o.Range, Telemetry: o.Telemetry}, workers, &ar.a)
	if err != nil {
		return nil, err
	}
	return &Network{
		opts:    o,
		top:     top,
		workers: workers,
	}, nil
}

// BuildNetworkTiled is BuildNetwork with the tile-sharded builder: the
// point set's bounding box is cut into tiles×tiles tiles, each built
// independently over a halo of boundary nodes (the 2D locality radius of
// the paper's Section 2) by a pool of workers, then stitched. The topology
// is bit-identical to BuildNetwork's for every tile grid and worker count;
// what changes is peak memory — per-worker cache-sized working sets
// instead of one shared arena — which is what admits million-node builds.
// tiles ≤ 0 selects a density heuristic, workers ≤ 0 selects GOMAXPROCS.
func BuildNetworkTiled(points []Point, opts Options, tiles, workers int) (*Network, error) {
	return BuildNetworkTiledContext(context.Background(), points, opts, tiles, workers)
}

// BuildNetworkTiledContext is BuildNetworkTiled under a cancellation
// context: tile workers check ctx between row batches, so a caller whose
// request was cancelled stops the build promptly and receives ctx.Err().
func BuildNetworkTiledContext(ctx context.Context, points []Point, opts Options, tiles, workers int) (*Network, error) {
	if len(points) < 2 {
		return nil, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, err
	}
	top, err := topology.BuildThetaTiled(ctx, points,
		topology.Config{Theta: o.Theta, Range: o.Range, Telemetry: o.Telemetry},
		topology.TiledConfig{Tiles: tiles, Workers: workers})
	if err != nil {
		return nil, err
	}
	return &Network{
		opts:    o,
		top:     top,
		workers: workers,
	}, nil
}

// ChurnEvent is one dynamic-topology event: a node joining, leaving, or
// moving.
type ChurnEvent = topology.Event

// Churn event kinds.
const (
	// EventJoin adds a node at Event.Pos.
	EventJoin = topology.Join
	// EventLeave removes node Event.Node; the last node takes the vacated
	// id, keeping ids dense.
	EventLeave = topology.Leave
	// EventMove relocates node Event.Node to Event.Pos.
	EventMove = topology.Move
)

// UpdateStats reports the locality of one incremental repair.
type UpdateStats = topology.UpdateStats

// DynamicNetwork maintains a ΘALG topology under node churn. Where
// BuildNetwork recomputes all n nodes, Apply repairs only the nodes within
// the locality radius the paper's 3-round protocol implies — the ≤D ball
// for phase-1 selections and the ≤2D ball for phase-2 admissions — so a
// single join, leave, or move costs a small constant fraction of a
// rebuild. The maintained topology is edge-for-edge identical to a
// from-scratch build on the current point set (under the paper's standing
// unique-pairwise-distance assumption). The transmission range is fixed at
// construction; DynamicNetwork is not safe for concurrent use.
type DynamicNetwork struct {
	dyn  *topology.Dynamic
	opts Options
}

// BuildDynamicNetwork builds the initial topology (over a copy of points)
// and returns the churn-maintenance handle.
func BuildDynamicNetwork(points []Point, opts Options) (*DynamicNetwork, error) {
	if len(points) < 2 {
		return nil, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, err
	}
	dyn := topology.NewDynamic(points, topology.Config{Theta: o.Theta, Range: o.Range, Telemetry: o.Telemetry})
	return &DynamicNetwork{dyn: dyn, opts: o}, nil
}

// Apply executes one churn event and repairs the topology locally,
// reporting how few nodes the repair touched. It returns an error for an
// out-of-range node, an occupied position, or a Leave that would drop the
// node count below two.
func (dn *DynamicNetwork) Apply(ev ChurnEvent) (UpdateStats, error) {
	switch ev.Kind {
	case EventJoin:
		if dn.dyn.HasNodeAt(ev.Pos) {
			return UpdateStats{}, fmt.Errorf("toporouting: position (%v, %v) already occupied", ev.Pos.X, ev.Pos.Y)
		}
	case EventLeave:
		if ev.Node < 0 || ev.Node >= dn.dyn.N() {
			return UpdateStats{}, fmt.Errorf("toporouting: node %d out of range [0,%d)", ev.Node, dn.dyn.N())
		}
		if dn.dyn.N() <= 2 {
			return UpdateStats{}, errors.New("toporouting: leave would drop below two nodes")
		}
	case EventMove:
		if ev.Node < 0 || ev.Node >= dn.dyn.N() {
			return UpdateStats{}, fmt.Errorf("toporouting: node %d out of range [0,%d)", ev.Node, dn.dyn.N())
		}
		if ev.Pos != dn.dyn.Points()[ev.Node] && dn.dyn.HasNodeAt(ev.Pos) {
			return UpdateStats{}, fmt.Errorf("toporouting: position (%v, %v) already occupied", ev.Pos.X, ev.Pos.Y)
		}
	default:
		return UpdateStats{}, fmt.Errorf("toporouting: unknown churn event kind %d", int(ev.Kind))
	}
	return dn.dyn.Apply(ev), nil
}

// Join adds a node at p and returns its id alongside the repair stats.
func (dn *DynamicNetwork) Join(p Point) (int, UpdateStats, error) {
	st, err := dn.Apply(ChurnEvent{Kind: EventJoin, Pos: p})
	if err != nil {
		return -1, st, err
	}
	return dn.dyn.N() - 1, st, nil
}

// Leave removes node v; the last node takes id v.
func (dn *DynamicNetwork) Leave(v int) (UpdateStats, error) {
	return dn.Apply(ChurnEvent{Kind: EventLeave, Node: v})
}

// MoveNode relocates node v to p.
func (dn *DynamicNetwork) MoveNode(v int, p Point) (UpdateStats, error) {
	return dn.Apply(ChurnEvent{Kind: EventMove, Node: v, Pos: p})
}

// N returns the current node count.
func (dn *DynamicNetwork) N() int { return dn.dyn.N() }

// Points returns the current node positions. Callers must not mutate the
// slice; the next Apply invalidates it.
func (dn *DynamicNetwork) Points() []Point { return dn.dyn.Points() }

// Edges returns the current undirected topology edges as [u, v] pairs with
// u < v, sorted.
func (dn *DynamicNetwork) Edges() [][2]int {
	es := dn.dyn.Topology().N.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// NumEdges returns the current edge count.
func (dn *DynamicNetwork) NumEdges() int { return dn.dyn.Topology().N.NumEdges() }

// MaxDegree returns the current maximum degree (always ≤ the Lemma 2.1
// bound, which churn maintenance preserves).
func (dn *DynamicNetwork) MaxDegree() int { return dn.dyn.Topology().N.MaxDegree() }

// Connected reports whether the current topology is connected.
func (dn *DynamicNetwork) Connected() bool { return dn.dyn.Topology().N.Connected() }

// Snapshot materializes the current state as an immutable Network, for
// stretch and interference evaluation. The snapshot copies the positions,
// so later churn does not affect it. The transmission graph G* is built
// lazily on first use — a global operation, so snapshot at evaluation
// points rather than per event.
func (dn *DynamicNetwork) Snapshot() *Network {
	pts := append([]Point(nil), dn.dyn.Points()...)
	top := dn.dyn.Topology()
	return &Network{
		opts: dn.opts,
		top: &topology.Topology{
			Pts:        pts,
			Cfg:        top.Cfg,
			Sectors:    top.Sectors,
			N:          top.N.Clone(),
			Yao:        top.Yao.Clone(),
			NearestOut: cloneTable(top.NearestOut),
			AdmitIn:    cloneTable(top.AdmitIn),
		},
	}
}

func cloneTable(t [][]int32) [][]int32 {
	out := make([][]int32, len(t))
	for i, row := range t {
		out[i] = append([]int32(nil), row...)
	}
	return out
}

// ProtocolStats reports the message traffic of the distributed protocol.
type ProtocolStats = topology.ProtocolStats

// BuildNetworkDistributed builds the same topology via the faithful
// 3-round message-passing protocol (Position / Neighborhood / Connection
// broadcasts), returning the per-round message statistics alongside.
func BuildNetworkDistributed(points []Point, opts Options) (*Network, ProtocolStats, error) {
	if len(points) < 2 {
		return nil, ProtocolStats{}, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, ProtocolStats{}, err
	}
	top, st := topology.BuildThetaDistributed(points, topology.Config{Theta: o.Theta, Range: o.Range, Telemetry: o.Telemetry})
	return &Network{
		opts: o,
		top:  top,
	}, st, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.top.N.N() }

// Points returns the node positions. Callers must not mutate the slice.
func (nw *Network) Points() []Point { return nw.top.Pts }

// Options returns the effective options the network was built with
// (defaults resolved).
func (nw *Network) Options() Options { return nw.opts }

// Edges returns the undirected edges of the topology N as [u, v] pairs
// with u < v, sorted.
func (nw *Network) Edges() [][2]int {
	es := nw.top.N.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// NumEdges returns the number of edges of N.
func (nw *Network) NumEdges() int { return nw.top.N.NumEdges() }

// TransmissionEdges returns the edges of the underlying transmission graph
// G* (all pairs within range) as [u, v] pairs with u < v, sorted. G* is
// typically far denser than N.
func (nw *Network) TransmissionEdges() [][2]int {
	es := nw.transmissionGraph().Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// Neighbors returns node u's adjacency list in N as node ids, in insertion
// order. Callers must not mutate the slice; for an arena-built network it
// aliases arena memory and is valid only until the arena's next build.
func (nw *Network) Neighbors(u int) []int32 { return nw.top.N.Neighbors(u) }

// Degree returns the degree of node v in N.
func (nw *Network) Degree(v int) int { return nw.top.N.Degree(v) }

// MaxDegree returns the maximum degree of N; Lemma 2.1 bounds it by
// DegreeBound.
func (nw *Network) MaxDegree() int { return nw.top.N.MaxDegree() }

// DegreeBound returns the 4π/θ degree bound of Lemma 2.1.
func (nw *Network) DegreeBound() int { return nw.top.DegreeBound() }

// Connected reports whether N is connected.
func (nw *Network) Connected() bool { return nw.top.N.Connected() }

// TransmissionGraphConnected reports whether the underlying G* is
// connected (the paper's standing assumption).
func (nw *Network) TransmissionGraphConnected() bool { return nw.transmissionGraph().Connected() }

// StretchSummary reports a stretch evaluation.
type StretchSummary struct {
	// Max is the stretch (maximum ratio); +Inf if any pair reachable in
	// G* is unreachable in N.
	Max float64
	// Mean and P95 summarize the ratio distribution.
	Mean, P95 float64
	// Pairs is the number of measured pairs.
	Pairs int
}

// EnergyStretch measures the energy-stretch of N relative to G* under the
// network's κ (Theorem 2.2 claims O(1)). maxSources bounds the number of
// shortest-path trees (0 = exact, all sources).
func (nw *Network) EnergyStretch(maxSources int) StretchSummary {
	r := stretch.Evaluate(nw.top.N, nw.transmissionGraph(), nw.top.Pts, stretch.Energy, stretch.Options{
		Kappa:   nw.opts.Kappa,
		Sources: headSources(nw.N(), maxSources),
	})
	return StretchSummary{Max: r.Max, Mean: r.Mean, P95: r.P95, Pairs: r.Pairs}
}

// DistanceStretch measures the distance-stretch of N relative to G*
// (Theorem 2.7 claims O(1) for civilized point sets).
func (nw *Network) DistanceStretch(maxSources int) StretchSummary {
	r := stretch.Evaluate(nw.top.N, nw.transmissionGraph(), nw.top.Pts, stretch.Distance, stretch.Options{
		Sources: headSources(nw.N(), maxSources),
	})
	return StretchSummary{Max: r.Max, Mean: r.Mean, P95: r.P95, Pairs: r.Pairs}
}

func headSources(n, max int) []int {
	if max <= 0 || max >= n {
		return nil
	}
	out := make([]int, max)
	for i := range out {
		out[i] = i * n / max
	}
	return out
}

// InterferenceNumber computes the interference number I of N under the
// network's guard zone Δ (Lemma 2.10: O(log n) whp for uniform random
// nodes). Networks built with BuildNetworkParallel reuse the same worker
// cap for the interference-set fan-out; the result is identical either
// way.
func (nw *Network) InterferenceNumber() int {
	m := interference.NewModel(nw.opts.Delta)
	m.Workers = nw.workers
	return m.Number(nw.top.Pts, nw.top.N.Edges())
}

// TransmissionInterferenceNumber computes the interference number of the
// full transmission graph G*. Comparing it against InterferenceNumber shows
// why topology control matters: the dense graph's links interfere far more,
// so a MAC layer can use only a tiny fraction of them concurrently. For
// graphs beyond 2000 edges the value is computed over a 500-edge sample
// (a lower bound on the true maximum).
func (nw *Network) TransmissionInterferenceNumber() int {
	m := interference.NewModel(nw.opts.Delta)
	m.Workers = nw.workers
	edges := nw.transmissionGraph().Edges()
	if len(edges) > 2000 {
		return m.NumberSampled(nw.top.Pts, edges, 500)
	}
	return m.Number(nw.top.Pts, edges)
}

// MinEnergyRoute returns the node sequence of the least-energy path from u
// to v in N, or nil if v is unreachable.
func (nw *Network) MinEnergyRoute(u, v int) []int {
	_, parent := nw.top.N.Dijkstra(u, nw.top.EnergyCost(nw.opts.Kappa))
	return graph.PathFromParents(parent, u, v)
}

// ThetaPath returns the θ-path replacement (Section 2.4) for a G* edge
// (u, v): a walk in N from u to v. It returns an error if |uv| exceeds the
// transmission range.
func (nw *Network) ThetaPath(u, v int) ([]int, error) {
	if geom.Dist(nw.top.Pts[u], nw.top.Pts[v]) > nw.opts.Range {
		return nil, fmt.Errorf("toporouting: (%d,%d) is not a transmission-graph edge", u, v)
	}
	return nw.top.ThetaPathNodes(u, v), nil
}

// EnergyCost returns the energy |uv|^κ of a direct transmission between
// nodes u and v.
func (nw *Network) EnergyCost(u, v int) float64 {
	return geom.EnergyCost(nw.top.Pts[u], nw.top.Pts[v], nw.opts.Kappa)
}

// GeneratePoints produces one of the built-in node distributions:
// "uniform", "civilized", "clustered", "grid", "expchain", "ring",
// "bridge". Results are deterministic in (kind, n, seed).
func GeneratePoints(kind string, n int, seed int64) ([]Point, error) {
	kinds := map[string]pointset.Kind{
		"uniform":   pointset.KindUniform,
		"civilized": pointset.KindCivilized,
		"clustered": pointset.KindClustered,
		"grid":      pointset.KindGrid,
		"expchain":  pointset.KindExponential,
		"ring":      pointset.KindRing,
		"bridge":    pointset.KindBridge,
	}
	k, ok := kinds[kind]
	if !ok {
		return nil, fmt.Errorf("toporouting: unknown distribution %q", kind)
	}
	if n < 2 {
		return nil, errors.New("toporouting: need n ≥ 2")
	}
	return pointset.Generate(k, n, seed), nil
}
