package toporouting

import (
	"errors"

	"toporouting/internal/routing"
)

// Link is an edge offered to the router for one step, with its current
// transmission cost. Links are full-duplex: one packet may cross in each
// direction per step.
type Link = routing.ActiveEdge

// Packets injects Count packets at Node destined for Dest at the end of a
// step.
type Packets = routing.Injection

// RouterOptions configures the (T,γ)-balancing algorithm (Section 3.2).
type RouterOptions struct {
	// T is the balancing threshold: a packet crosses an edge only when
	// the height difference minus γ·cost exceeds T. Theorem 3.1 uses
	// T ≥ B + 2(δ−1) for OPT buffer size B and δ frequencies.
	T float64
	// Gamma is the cost sensitivity γ.
	Gamma float64
	// BufferSize is the per-(node, destination) buffer capacity; newly
	// injected packets that would overflow are dropped (admission
	// control). Must be positive.
	BufferSize int
}

// Router runs the (T,γ)-balancing algorithm of the paper: a purely local
// rule that, per active edge and direction, moves one packet of the
// destination with the largest height difference when it beats T + γ·cost.
// Theorem 3.1: for any adversarial sequence of edge activations and
// injections it delivers a (1−ε) fraction of what any offline schedule
// delivers, with buffers larger by O(L̄/ε) and average cost within O(1/ε).
type Router struct {
	b *routing.Balancer
}

// NewRouter creates a router over n nodes.
func NewRouter(n int, opts RouterOptions) (*Router, error) {
	if n <= 0 {
		return nil, errors.New("toporouting: router needs n > 0")
	}
	if opts.BufferSize <= 0 {
		return nil, errors.New("toporouting: router needs a positive buffer size")
	}
	if opts.Gamma < 0 {
		return nil, errors.New("toporouting: negative gamma")
	}
	return &Router{b: routing.New(n, routing.Params{
		T: opts.T, Gamma: opts.Gamma, BufferSize: opts.BufferSize,
	})}, nil
}

// StepReport summarizes one router step.
type StepReport = routing.StepReport

// Step advances one synchronous step: balancing decisions over the active
// links, absorption at destinations, then injection with admission
// control.
func (r *Router) Step(active []Link, inject []Packets) StepReport {
	return r.b.Step(active, inject)
}

// SetTelemetry installs a telemetry scope: every Step then maintains the
// cumulative router.* counters and gauges and, when the scope traces,
// emits one per-step event carrying the height/queue/drop/delivery series.
// A nil scope (the default) leaves the router uninstrumented.
func (r *Router) SetTelemetry(t *Telemetry) { r.b.SetTelemetry(t) }

// Height returns the current height of buffer Q(v, d).
func (r *Router) Height(v, d int) int { return r.b.Height(v, d) }

// Queued returns the total number of packets currently buffered.
func (r *Router) Queued() int { return r.b.TotalQueued() }

// Delivered returns the cumulative number of packets absorbed at their
// destinations.
func (r *Router) Delivered() int64 { return r.b.Delivered() }

// Accepted returns the cumulative number of injected packets admitted.
func (r *Router) Accepted() int64 { return r.b.Accepted() }

// Dropped returns the cumulative number of injected packets rejected by
// admission control.
func (r *Router) Dropped() int64 { return r.b.Dropped() }

// TotalCost returns the cumulative transmission cost spent.
func (r *Router) TotalCost() float64 { return r.b.TotalCost() }

// AvgCostPerDelivery returns TotalCost divided by Delivered (0 before the
// first delivery).
func (r *Router) AvgCostPerDelivery() float64 { return r.b.AvgCostPerDelivery() }

// EnableLatencyTracking turns on per-packet latency recording (FIFO
// service within each buffer). Must be called before the first Step.
func (r *Router) EnableLatencyTracking() { r.b.EnableLatencyTracking() }

// LatencyStats summarizes delivered-packet latencies in steps.
type LatencyStats = routing.LatencyStats

// Latencies returns the latency summary; meaningful only after
// EnableLatencyTracking.
func (r *Router) Latencies() LatencyStats { return r.b.Latencies() }

// InjectAnycast admits count packets at node that are satisfied by
// delivery to any member of the group (the anycast generalization the
// paper's balancing lineage supports). Returns (accepted, dropped) under
// the same admission control as unicast injections.
func (r *Router) InjectAnycast(node int, members []int, count int) (accepted, dropped int) {
	return r.b.InjectAnycast(node, members, count)
}

// SuggestedT returns the Theorem 3.1 threshold T = B + 2(δ−1) for an OPT
// buffer size B and δ concurrently usable frequencies.
func SuggestedT(optBuffer, delta int) float64 { return routing.SuggestedT(optBuffer, delta) }

// SuggestedGamma returns the Theorem 3.1 cost sensitivity
// γ = (T+B+δ)·L̄/C̄.
func SuggestedGamma(t float64, optBuffer, delta int, avgPathLen, avgCost float64) float64 {
	return routing.SuggestedGamma(t, optBuffer, delta, avgPathLen, avgCost)
}
