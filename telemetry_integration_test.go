package toporouting

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// simTelemetryOptions is a small instrumented honeycomb scenario shared by
// the public-API telemetry tests.
func simTelemetryOptions(t *testing.T, tel *Telemetry) SimulationOptions {
	t.Helper()
	pts := mustPoints(t, "uniform", 60, 3)
	return SimulationOptions{
		Points:    pts,
		MAC:       MACRandom,
		Router:    RouterOptions{BufferSize: 40},
		Traffic:   SinksTraffic(len(pts), []int{3, 17}, 2, 100),
		Steps:     200,
		Seed:      3,
		Telemetry: tel,
	}
}

func TestSimulateMetricsSnapshot(t *testing.T) {
	bare, err := Simulate(simTelemetryOptions(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Metrics != nil {
		t.Fatal("uninstrumented run returned metrics")
	}

	tel := NewTelemetry()
	res, err := Simulate(simTelemetryOptions(t, tel))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("instrumented run returned no metrics snapshot")
	}
	if got := res.Metrics.Counters["router.delivered"]; got != res.Delivered {
		t.Errorf("metrics delivered = %d, result says %d", got, res.Delivered)
	}
	if res.Delivered != bare.Delivered || res.Queued != bare.Queued || res.Moves != bare.Moves {
		t.Errorf("telemetry changed results: %+v vs %+v", res, bare)
	}
	if res.Metrics.Histograms["phase.sim.run.ms"].N != 1 {
		t.Errorf("missing sim.run phase timing: %+v", res.Metrics.Histograms)
	}
}

// TestSimulateJSONLTraceRoundTrip is the acceptance check for the trace
// surface: an instrumented Simulate writes a JSONL file whose every line
// decodes back into a TraceEvent carrying the per-step router series.
func TestSimulateJSONLTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	sink, err := CreateJSONLTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTracedTelemetry(sink)
	res, err := Simulate(simTelemetryOptions(t, tel))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadJSONLTrace(f)
	if err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	var routerSteps int
	var delivered float64
	for _, ev := range events {
		if ev.Kind == "" {
			t.Fatalf("event missing kind: %+v", ev)
		}
		if ev.Layer == "router" && ev.Kind == "step" {
			routerSteps++
			delivered += ev.Fields["delivered"]
		}
	}
	if routerSteps != 200 {
		t.Errorf("router step events = %d, want 200", routerSteps)
	}
	if int64(delivered) != res.Delivered {
		t.Errorf("trace delivered = %v, result says %d", delivered, res.Delivered)
	}
}

func TestSimulationResultJSON(t *testing.T) {
	tel := NewTelemetry()
	res, err := Simulate(simTelemetryOptions(t, tel))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"delivered", "accepted", "dropped", "moves", "total_cost", "metrics"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("result JSON missing %q: %s", key, raw)
		}
	}
	var back SimulationResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Delivered != res.Delivered || back.Metrics == nil {
		t.Errorf("result JSON round trip lost data: %+v", back)
	}
}

func TestBuildNetworkTelemetry(t *testing.T) {
	tel := NewTelemetry()
	pts := mustPoints(t, "uniform", 80, 1)
	nw, err := BuildNetwork(pts, Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	m := tel.Snapshot()
	if m.Counters["topology.builds"] != 1 {
		t.Errorf("topology.builds = %d, want 1", m.Counters["topology.builds"])
	}
	if got := m.Gauges["topology.edges"]; got != float64(nw.NumEdges()) {
		t.Errorf("topology.edges gauge = %v, network has %d", got, nw.NumEdges())
	}
	for _, phase := range []string{"phase.topology.build.ms", "phase.topology.phase1.ms", "phase.topology.phase2.ms"} {
		if m.Histograms[phase].N != 1 {
			t.Errorf("phase timer %s did not fire: %+v", phase, m.Histograms[phase])
		}
	}

	// Distributed build records rounds and message counters.
	tel2 := NewTelemetry()
	_, st, err := BuildNetworkDistributed(pts, Options{Telemetry: tel2})
	if err != nil {
		t.Fatal(err)
	}
	m2 := tel2.Snapshot()
	if got := m2.Counters["topology.dist.position_msgs"]; got != int64(st.PositionMsgs) {
		t.Errorf("position msg counter = %d, stats say %d", got, st.PositionMsgs)
	}
	for _, phase := range []string{"phase.topology.dist.position.ms", "phase.topology.dist.neighborhood.ms", "phase.topology.dist.connection.ms"} {
		if m2.Histograms[phase].N != 1 {
			t.Errorf("distributed phase timer %s did not fire", phase)
		}
	}
}

func TestRouterSetTelemetry(t *testing.T) {
	tel := NewTelemetry()
	r, err := NewRouter(4, RouterOptions{BufferSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	r.SetTelemetry(tel)
	links := []Link{{U: 0, V: 1, Cost: 0}, {U: 1, V: 2, Cost: 0}, {U: 2, V: 3, Cost: 0}}
	r.Step(nil, []Packets{{Node: 0, Dest: 3, Count: 5}})
	for i := 0; i < 50; i++ {
		r.Step(links, nil)
	}
	m := tel.Snapshot()
	if m.Counters["router.accepted"] != 5 {
		t.Errorf("router.accepted = %d, want 5", m.Counters["router.accepted"])
	}
	if m.Counters["router.delivered"] != r.Delivered() {
		t.Errorf("router.delivered = %d, router says %d", m.Counters["router.delivered"], r.Delivered())
	}
}
