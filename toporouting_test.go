package toporouting

import (
	"math"
	"strings"
	"testing"
)

func mustPoints(t *testing.T, kind string, n int, seed int64) []Point {
	t.Helper()
	pts, err := GeneratePoints(kind, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestGeneratePoints(t *testing.T) {
	for _, kind := range []string{"uniform", "civilized", "clustered", "grid", "expchain", "ring", "bridge"} {
		pts, err := GeneratePoints(kind, 80, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(pts) < 40 {
			t.Errorf("%s: %d points", kind, len(pts))
		}
	}
	if _, err := GeneratePoints("nope", 10, 1); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := GeneratePoints("uniform", 1, 1); err == nil {
		t.Error("n < 2 should error")
	}
}

func TestBuildNetworkBasics(t *testing.T) {
	pts := mustPoints(t, "uniform", 150, 3)
	nw, err := BuildNetwork(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 150 {
		t.Errorf("N = %d", nw.N())
	}
	if !nw.Connected() || !nw.TransmissionGraphConnected() {
		t.Error("network should be connected")
	}
	if nw.MaxDegree() > nw.DegreeBound() {
		t.Errorf("degree %d > bound %d", nw.MaxDegree(), nw.DegreeBound())
	}
	if nw.NumEdges() == 0 || len(nw.Edges()) != nw.NumEdges() {
		t.Error("edge accessors inconsistent")
	}
	o := nw.Options()
	if o.Theta == 0 || o.Range == 0 || o.Kappa != 2 || o.Delta == 0 {
		t.Errorf("defaults not resolved: %+v", o)
	}
	if len(nw.Points()) != 150 {
		t.Error("Points accessor")
	}
	// Per-node degree sums to 2|E|.
	sum := 0
	for v := 0; v < nw.N(); v++ {
		sum += nw.Degree(v)
	}
	if sum != 2*nw.NumEdges() {
		t.Error("degree sum mismatch")
	}
}

func TestBuildNetworkErrors(t *testing.T) {
	pts := mustPoints(t, "uniform", 10, 1)
	cases := []Options{
		{Theta: -1},
		{Theta: math.Pi},
		{Kappa: 1.5},
		{Delta: -0.5},
		{Range: -2},
	}
	for i, o := range cases {
		if _, err := BuildNetwork(pts, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := BuildNetwork(pts[:1], Options{}); err == nil {
		t.Error("single point should error")
	}
}

func TestNetworkStretch(t *testing.T) {
	pts := mustPoints(t, "uniform", 120, 5)
	nw, err := BuildNetwork(pts, Options{Theta: math.Pi / 9})
	if err != nil {
		t.Fatal(err)
	}
	es := nw.EnergyStretch(0)
	if es.Max < 1 || es.Max > 12 || math.IsInf(es.Max, 1) {
		t.Errorf("energy stretch = %+v", es)
	}
	ds := nw.DistanceStretch(20)
	if ds.Max < 1 || math.IsInf(ds.Max, 1) {
		t.Errorf("distance stretch = %+v", ds)
	}
	if es.Pairs == 0 || ds.Pairs == 0 {
		t.Error("no pairs measured")
	}
}

func TestNetworkInterferenceNumber(t *testing.T) {
	pts := mustPoints(t, "uniform", 150, 7)
	nw, err := BuildNetwork(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	i := nw.InterferenceNumber()
	if i < 1 || i >= nw.NumEdges() {
		t.Errorf("interference number = %d (edges %d)", i, nw.NumEdges())
	}
}

func TestNetworkRoutesAndThetaPath(t *testing.T) {
	pts := mustPoints(t, "uniform", 100, 9)
	nw, err := BuildNetwork(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	route := nw.MinEnergyRoute(0, 50)
	if len(route) == 0 || route[0] != 0 || route[len(route)-1] != 50 {
		t.Fatalf("route = %v", route)
	}
	// Energy cost of each hop must be positive and accessible.
	for i := 0; i+1 < len(route); i++ {
		if nw.EnergyCost(route[i], route[i+1]) <= 0 {
			t.Error("non-positive hop energy")
		}
	}
	// θ-path for a real G* edge.
	e := nw.Edges()[0]
	path, err := nw.ThetaPath(e[0], e[1])
	if err != nil || len(path) < 2 {
		t.Fatalf("theta path: %v %v", path, err)
	}
	// θ-path rejects out-of-range pairs: find the farthest pair.
	far0, far1, best := 0, 1, 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			dx, dy := pts[i].X-pts[j].X, pts[i].Y-pts[j].Y
			if d2 := dx*dx + dy*dy; d2 > best {
				best, far0, far1 = d2, i, j
			}
		}
	}
	if math.Sqrt(best) > nw.Options().Range {
		if _, err := nw.ThetaPath(far0, far1); err == nil {
			t.Error("expected range error")
		}
	}
}

func TestBuildNetworkDistributedMatches(t *testing.T) {
	pts := mustPoints(t, "uniform", 120, 11)
	nw, err := BuildNetwork(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dnw, st, err := BuildNetworkDistributed(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.PositionMsgs != 120 || st.ConnectionMsgs == 0 {
		t.Errorf("protocol stats: %+v", st)
	}
	a, b := nw.Edges(), dnw.Edges()
	if len(a) != len(b) {
		t.Fatalf("edge counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("edges differ")
		}
	}
	if _, _, err := BuildNetworkDistributed(pts[:1], Options{}); err == nil {
		t.Error("single point should error")
	}
}

func TestRouterFacade(t *testing.T) {
	r, err := NewRouter(3, RouterOptions{T: 0, Gamma: 0, BufferSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	r.Step(nil, []Packets{{Node: 0, Dest: 2, Count: 3}})
	if r.Height(0, 2) != 3 || r.Queued() != 3 {
		t.Error("injection not reflected")
	}
	links := []Link{{U: 0, V: 1}, {U: 1, V: 2}}
	for i := 0; i < 10; i++ {
		r.Step(links, nil)
	}
	if r.Delivered() != 3 {
		t.Errorf("delivered = %d", r.Delivered())
	}
	if r.Accepted() != 3 || r.Dropped() != 0 {
		t.Error("counters wrong")
	}
	if r.TotalCost() != 0 || r.AvgCostPerDelivery() != 0 {
		t.Error("zero-cost links should cost nothing")
	}
}

func TestRouterErrors(t *testing.T) {
	if _, err := NewRouter(0, RouterOptions{BufferSize: 1}); err == nil {
		t.Error("n=0")
	}
	if _, err := NewRouter(2, RouterOptions{BufferSize: 0}); err == nil {
		t.Error("buffer=0")
	}
	if _, err := NewRouter(2, RouterOptions{BufferSize: 1, Gamma: -1}); err == nil {
		t.Error("gamma<0")
	}
}

func TestSuggestedParamsFacade(t *testing.T) {
	if SuggestedT(4, 2) != 6 {
		t.Error("SuggestedT")
	}
	if SuggestedGamma(6, 4, 2, 3, 1.5) != (6+4+2)*3/1.5 {
		t.Error("SuggestedGamma")
	}
}

func TestSimulateFacade(t *testing.T) {
	pts := mustPoints(t, "uniform", 60, 13)
	res, err := Simulate(SimulationOptions{
		Points:  pts,
		Router:  RouterOptions{BufferSize: 40},
		Traffic: SinksTraffic(60, []int{5, 10}, 2, 200),
		Steps:   500,
		Seed:    13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.Accepted == 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Delivered+int64(res.Queued) != res.Accepted {
		t.Error("conservation broken")
	}
}

func TestSimulateRandomMACAndMobility(t *testing.T) {
	pts := mustPoints(t, "uniform", 50, 17)
	res, err := Simulate(SimulationOptions{
		Points:        pts,
		MAC:           MACRandom,
		Router:        RouterOptions{BufferSize: 40},
		Traffic:       SinksTraffic(50, []int{7}, 1, 600),
		Steps:         1500,
		MobilityEvery: 500,
		MobilityStep:  0.01,
		Seed:          17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.I < 1 {
		t.Error("random MAC should report I")
	}
	if res.Rebuilds != 2 {
		t.Errorf("rebuilds = %d", res.Rebuilds)
	}
}

func TestSimulateErrors(t *testing.T) {
	pts := mustPoints(t, "uniform", 10, 1)
	cases := []SimulationOptions{
		{Points: pts[:1], Router: RouterOptions{BufferSize: 5}, Steps: 10},
		{Points: pts, Router: RouterOptions{BufferSize: 5}, Steps: 0},
		{Points: pts, Router: RouterOptions{BufferSize: 0}, Steps: 10},
		{Points: pts, Router: RouterOptions{BufferSize: 5}, Steps: 10, MAC: MAC(9)},
	}
	for i, o := range cases {
		if _, err := Simulate(o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	out, err := RunExperiment("E1", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Lemma 2.1") {
		t.Error("E1 output missing claim")
	}
	if _, err := RunExperiment("E99", false); err == nil {
		t.Error("unknown experiment should error")
	}
	ids := ExperimentIDs()
	if len(ids) != 21 || ids[0] != "E1" {
		t.Errorf("ids = %v", ids)
	}
}

func TestGeoRouterFacade(t *testing.T) {
	pts := mustPoints(t, "uniform", 120, 19)
	nw, err := BuildNetwork(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := NewGeoRouter(pts, nw.Options().Range)
	if err != nil {
		t.Fatal(err)
	}
	if gr.NumEdges() == 0 {
		t.Fatal("empty Gabriel graph")
	}
	r, err := gr.Route(0, 60)
	if err != nil || !r.Delivered {
		t.Fatalf("gpsr: %+v %v", r, err)
	}
	if r.Length <= 0 || r.Energy <= 0 {
		t.Error("path metrics missing")
	}
	if _, err := gr.Route(-1, 5); err == nil {
		t.Error("bad endpoints should error")
	}
	g, err := gr.Greedy(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if g.Delivered && len(g.Path) < 2 {
		t.Error("greedy path too short")
	}
	if _, err := NewGeoRouter(pts[:1], 0); err == nil {
		t.Error("too few points should error")
	}
}

func TestWriteSVGFacade(t *testing.T) {
	pts := mustPoints(t, "uniform", 40, 21)
	nw, err := BuildNetwork(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	route := nw.MinEnergyRoute(0, 20)
	if err := nw.WriteSVG(&sb, route); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") || !strings.Contains(sb.String(), "<path") {
		t.Error("svg output incomplete")
	}
}

func TestRouterLatencyAndAnycastFacade(t *testing.T) {
	r, err := NewRouter(5, RouterOptions{BufferSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	r.EnableLatencyTracking()
	acc, drop := r.InjectAnycast(1, []int{0, 4}, 3)
	if acc != 3 || drop != 0 {
		t.Fatalf("anycast inject: %d %d", acc, drop)
	}
	links := []Link{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}
	for i := 0; i < 30; i++ {
		r.Step(links, nil)
	}
	if r.Delivered() != 3 {
		t.Fatalf("delivered %d", r.Delivered())
	}
	// Injected before the first step: the nearest member (node 0) is one
	// hop away, so the first delivery lands within step one (latency 0
	// relative to the pre-run injection).
	st := r.Latencies()
	if st.Count != 3 || st.Max < 1 {
		t.Errorf("latency stats: %+v", st)
	}
}

func TestPointsIO(t *testing.T) {
	pts := mustPoints(t, "uniform", 30, 23)
	var sb strings.Builder
	if err := WritePointsTo(&sb, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPointsFrom(strings.NewReader(sb.String()))
	if err != nil || len(got) != 30 {
		t.Fatalf("round trip: %v %v", len(got), err)
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatal("precision lost")
		}
	}
}
