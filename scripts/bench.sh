#!/usr/bin/env bash
# bench.sh — run the hot-path microbenchmarks and either record a baseline
# or gate the current tree against the committed one.
#
#   scripts/bench.sh baseline   # rewrite BENCH_baseline.json from this machine
#   scripts/bench.sh gate       # compare against BENCH_baseline.json (CI mode)
#   scripts/bench.sh run        # just print the bench output (default)
#
# The gate fails when any benchmark's ns/op regresses by more than
# BENCH_MAX_REGRESS (default 0.30 = +30%). B/op and allocs/op changes are
# warn-only EXCEPT for benchmarks matching BENCH_ALLOC_STRICT — the serving
# benchmarks, whose pooled encode buffers are the optimization: an
# allocation regression there fails the gate. Baselines are
# machine-dependent — regenerate on the reference machine (or in CI) rather
# than mixing hosts.
#
# The gate additionally enforces BENCH_RATIOS, within-run ns/op bounds that
# do not depend on the machine: the fully-traced serving path must stay
# within 5% of the untraced one (pinning observability overhead), and the
# hosted-session event path must stay at least 5x faster than rebuilding
# the same n=2000 topology per request (the dynamic-repair payoff the
# sessions subsystem exists to serve), and a response-cache hit must answer
# in at most a tenth of the cold build-and-encode path (the memoization
# payoff the digest-keyed cache exists to serve).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-run}"
BENCH_PATTERN="${BENCH_PATTERN:-BalancerStepManyDests|MaxBenefit|InterferenceSets|ServeTopology|BuildThetaTiled|Session}"
BENCH_TIME="${BENCH_TIME:-1s}"
BENCH_MAX_REGRESS="${BENCH_MAX_REGRESS:-0.30}"
BENCH_RATIOS="${BENCH_RATIOS:-BenchmarkServeTopologyTraced/BenchmarkServeTopologyMetrics<=1.05,BenchmarkSessionApplyEvent/BenchmarkServeTopologyN2000<=0.2,BenchmarkServeTopologyCacheHit/BenchmarkServeTopology<=0.1}"
BENCH_ALLOC_STRICT="${BENCH_ALLOC_STRICT:-^Benchmark(ServeTopology|Session)}"
BASELINE="BENCH_baseline.json"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

go test -run '^$' -bench "$BENCH_PATTERN" -benchtime "$BENCH_TIME" \
    -benchmem -count=1 . | tee "$OUT"

case "$MODE" in
run)
    ;;
baseline)
    go run ./cmd/benchdump -in "$OUT" -out "$BASELINE"
    ;;
gate)
    if [ ! -f "$BASELINE" ]; then
        echo "bench.sh: no $BASELINE to gate against; run 'scripts/bench.sh baseline' first" >&2
        exit 1
    fi
    go run ./cmd/benchdump -in "$OUT" -baseline "$BASELINE" \
        -max-regress "$BENCH_MAX_REGRESS" -ratio "$BENCH_RATIOS" \
        -alloc-strict "$BENCH_ALLOC_STRICT"
    ;;
*)
    echo "bench.sh: unknown mode '$MODE' (want run|baseline|gate)" >&2
    exit 2
    ;;
esac
