//go:build bigbench

package toporouting

// Million-node benchmarks, behind -tags bigbench: a single iteration takes
// tens of seconds and ~1 GiB of working set, far past what the default
// bench sweep (or CI) should pay.
//
// Run:  go test -tags bigbench -bench BuildThetaTiledBig -benchtime 1x

import (
	"context"
	"math"
	"runtime"
	"testing"

	"toporouting/internal/topology"
)

// BenchmarkBuildThetaTiledBig builds the n=10⁶ topology tile-sharded and
// reports peak heap alongside the standard metrics — the scale target of
// the tiled construction (README "Scaling up" has measured numbers).
func BenchmarkBuildThetaTiledBig(b *testing.B) {
	const n = 1000000
	pts := benchPoints(n)
	d := 1.6 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
	cfg := topology.Config{Theta: math.Pi / 6, Range: d}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, err := topology.BuildThetaTiled(context.Background(), pts, cfg, topology.TiledConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			b.ReportMetric(float64(ms.HeapInuse)/(1<<20), "heapMiB")
			b.ReportMetric(float64(top.N.NumEdges()), "edges")
		}
	}
}
