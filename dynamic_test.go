package toporouting

import (
	"reflect"
	"testing"
)

func TestBuildNetworkParallelMatchesSequential(t *testing.T) {
	pts := mustPoints(t, "uniform", 300, 8)
	opts := Options{}
	seq, err := BuildNetwork(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 1, 2, 7} {
		par, err := BuildNetworkParallel(pts, opts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par.Edges(), seq.Edges()) {
			t.Fatalf("workers=%d: parallel build changed the topology", workers)
		}
	}
}

func TestDynamicNetworkChurnMatchesRebuild(t *testing.T) {
	pts := mustPoints(t, "uniform", 200, 12)
	// Fix the range explicitly so the comparison rebuild uses the same D
	// (the default derives it from the initial critical range).
	base, err := BuildNetwork(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Range: base.Options().Range}
	dn, err := BuildDynamicNetwork(pts, opts)
	if err != nil {
		t.Fatal(err)
	}

	id, st, err := dn.Join(Pt(0.42, 0.58))
	if err != nil || id != 200 || st.Touched == 0 {
		t.Fatalf("Join: id=%d st=%+v err=%v", id, st, err)
	}
	if _, err := dn.MoveNode(17, Pt(0.9, 0.05)); err != nil {
		t.Fatal(err)
	}
	if _, err := dn.Leave(3); err != nil {
		t.Fatal(err)
	}

	fresh, err := BuildNetwork(dn.Points(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dn.Edges(), fresh.Edges()) {
		t.Fatal("maintained topology diverged from a from-scratch build")
	}
	if dn.NumEdges() != fresh.NumEdges() || dn.MaxDegree() != fresh.MaxDegree() {
		t.Fatal("edge count or degree diverged from a from-scratch build")
	}

	snap := dn.Snapshot()
	if !reflect.DeepEqual(snap.Edges(), fresh.Edges()) {
		t.Fatal("snapshot diverged from the maintained topology")
	}
	// Churn after the snapshot must not leak into it.
	before := snap.NumEdges()
	for i := 0; i < 5; i++ {
		if _, _, err := dn.Join(Pt(0.1+float64(i)*0.01, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	if snap.NumEdges() != before || snap.N() != fresh.N() {
		t.Fatal("later churn mutated the snapshot")
	}
	if s := snap.EnergyStretch(10); s.Max < 1 || s.Pairs == 0 {
		t.Fatalf("snapshot stretch evaluation broken: %+v", s)
	}
}

func TestDynamicNetworkErrors(t *testing.T) {
	pts := mustPoints(t, "uniform", 30, 2)
	dn, err := BuildDynamicNetwork(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dn.Join(pts[5]); err == nil {
		t.Error("Join on an occupied position must fail")
	}
	if _, err := dn.Leave(99); err == nil {
		t.Error("Leave out of range must fail")
	}
	if _, err := dn.MoveNode(-1, Pt(0.5, 0.5)); err == nil {
		t.Error("MoveNode out of range must fail")
	}
	if _, err := dn.MoveNode(0, pts[1]); err == nil {
		t.Error("MoveNode onto an occupied position must fail")
	}
	if _, err := dn.Apply(ChurnEvent{Kind: 42}); err == nil {
		t.Error("unknown event kind must fail")
	}
	if dn.N() != 30 {
		t.Fatalf("failed events mutated the network: n=%d", dn.N())
	}
}

func TestSimulateChurnOptions(t *testing.T) {
	pts := mustPoints(t, "uniform", 100, 5)
	res, err := Simulate(SimulationOptions{
		Points:     pts,
		Router:     RouterOptions{BufferSize: 40},
		Traffic:    SinksTraffic(len(pts), []int{3, 50}, 2, 150),
		Steps:      200,
		ChurnEvery: 20,
		ChurnMoves: 2,
		ChurnStep:  0.02,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnEvents == 0 || res.TouchedNodes == 0 {
		t.Fatalf("churn options ignored: %+v", res)
	}
	if _, err := Simulate(SimulationOptions{
		Points: pts, Router: RouterOptions{BufferSize: 10}, Steps: 10,
		ChurnEvery: 5, MobilityEvery: 5,
	}); err == nil {
		t.Error("churn+mobility must be rejected")
	}
	if _, err := Simulate(SimulationOptions{
		Points: pts, Router: RouterOptions{BufferSize: 10}, Steps: 10,
		ChurnEvery: 5, MAC: MACHoneycomb,
	}); err == nil {
		t.Error("churn+honeycomb must be rejected")
	}
}
