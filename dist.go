package toporouting

import (
	"context"
	"errors"

	"toporouting/internal/dist"
)

// FaultPlan configures fault injection for the asynchronous distributed
// builder: per-link Bernoulli message drop, bounded random delivery delay,
// and node crash/restart cycles with full state loss. The zero value is a
// fault-free plan.
type FaultPlan = dist.Faults

// DistStats is the traffic and fault accounting of one asynchronous
// distributed build.
type DistStats = dist.Stats

// DistCertificate is the convergence certificate of an asynchronous
// distributed build: quiescence, an edge diff against the centralized
// reference, connectivity, and the Lemma 2.1 degree bound.
type DistCertificate = dist.Certificate

// DistReport bundles the run statistics and convergence certificate of one
// asynchronous distributed build.
type DistReport struct {
	Stats       DistStats
	Certificate DistCertificate
}

// BuildNetworkDistributedAsync builds the topology with the message-passing
// protocol engine (internal/dist): every node is an independent actor that
// discovers neighbors through HELLO beacons, announces per-sector selections
// (phase 1), and requests/grants admissions (phase 2) over a lossy, delayed
// medium sampled from the fault plan — no actor reads global state. The
// engine runs to quiescence under seed-deterministic discrete-event
// scheduling, so replays with equal inputs are bit-identical.
//
// On a fault-free plan the result is edge-identical to BuildNetwork; under
// faults the returned certificate reports what still holds (connectivity and
// the degree bound, per the paper's Lemma 2.1). The certificate's Holds
// method is the go/no-go signal.
func BuildNetworkDistributedAsync(points []Point, opts Options, faults FaultPlan, seed int64) (*Network, DistReport, error) {
	return BuildNetworkDistributedAsyncContext(context.Background(), points, opts, faults, seed)
}

// BuildNetworkDistributedAsyncContext is BuildNetworkDistributedAsync
// under a cancellation context: the discrete-event protocol engine checks
// ctx periodically and abandons the run with ctx.Err() when it is
// cancelled. A background context reproduces the uncancelled build exactly.
func BuildNetworkDistributedAsyncContext(ctx context.Context, points []Point, opts Options, faults FaultPlan, seed int64) (*Network, DistReport, error) {
	if len(points) < 2 {
		return nil, DistReport{}, errors.New("toporouting: need at least two points")
	}
	o, err := opts.withDefaults(points)
	if err != nil {
		return nil, DistReport{}, err
	}
	out, err := dist.BuildContext(ctx, points, dist.Config{
		Theta:     o.Theta,
		Range:     o.Range,
		Seed:      seed,
		Faults:    faults,
		Telemetry: o.Telemetry,
	})
	if err != nil {
		return nil, DistReport{}, err
	}
	rep := DistReport{Stats: out.Stats, Certificate: out.Certify()}
	return &Network{
		opts: o,
		top:  out.Top,
	}, rep, nil
}
