package toporouting

import (
	"errors"
	"fmt"
	"io"

	"toporouting/internal/fileio"
	"toporouting/internal/georouting"
	"toporouting/internal/graph"
	"toporouting/internal/proximity"
	"toporouting/internal/viz"
)

// GeoRouter performs stateless geographic routing (greedy forwarding with
// GPSR-style face recovery) over the planar Gabriel subgraph of a
// transmission graph. It is the Section 1.2 baseline: no buffers, no
// control traffic, guaranteed delivery on connected planar graphs — but no
// throughput or cost competitiveness.
type GeoRouter struct {
	pts    []Point
	gab    *graph.Graph
	router interface {
		Route(src, dst, maxHops int) georouting.Result
	}
}

// GeoRoute is the outcome of one geographic routing attempt.
type GeoRoute struct {
	// Path is the node walk (source first; on failure, up to the stuck
	// node).
	Path []int
	// Delivered reports whether the destination was reached.
	Delivered bool
	// PerimeterHops counts recovery-mode hops.
	PerimeterHops int
	// Length and Energy are the Euclidean and |uv|² costs of the walk.
	Length, Energy float64
}

// NewGeoRouter builds a geographic router over points using the Gabriel
// graph restricted to maxRange (0 = unrestricted). It errors if the
// resulting graph is disconnected (face routing then cannot guarantee
// delivery between components).
func NewGeoRouter(points []Point, maxRange float64) (*GeoRouter, error) {
	if len(points) < 2 {
		return nil, errors.New("toporouting: geo router needs ≥ 2 points")
	}
	gab := proximity.Gabriel(points, maxRange)
	if !gab.Connected() {
		return nil, errors.New("toporouting: Gabriel graph disconnected at this range")
	}
	return &GeoRouter{
		pts:    points,
		gab:    gab,
		router: georouting.NewPlanarRouter(gab, points),
	}, nil
}

// Greedy routes with plain greedy forwarding only; it may strand at a
// local minimum (Delivered = false).
func (g *GeoRouter) Greedy(src, dst int) (GeoRoute, error) {
	if err := g.check(src, dst); err != nil {
		return GeoRoute{}, err
	}
	return g.wrap(georouting.Greedy(g.gab, g.pts, src, dst, 0)), nil
}

// Route routes with greedy forwarding plus face recovery (GPSR); on a
// connected planar graph it always delivers.
func (g *GeoRouter) Route(src, dst int) (GeoRoute, error) {
	if err := g.check(src, dst); err != nil {
		return GeoRoute{}, err
	}
	return g.wrap(g.router.Route(src, dst, 0)), nil
}

func (g *GeoRouter) check(src, dst int) error {
	if src < 0 || src >= len(g.pts) || dst < 0 || dst >= len(g.pts) {
		return fmt.Errorf("toporouting: endpoints (%d,%d) out of range", src, dst)
	}
	return nil
}

func (g *GeoRouter) wrap(r georouting.Result) GeoRoute {
	return GeoRoute{
		Path:          r.Path,
		Delivered:     r.Delivered,
		PerimeterHops: r.PerimeterHops,
		Length:        georouting.PathLength(g.pts, r.Path),
		Energy:        georouting.PathEnergy(g.pts, r.Path, 2),
	}
}

// NumEdges returns the size of the underlying Gabriel graph.
func (g *GeoRouter) NumEdges() int { return g.gab.NumEdges() }

// WritePointsTo serializes a point set in the repository's text format
// (one "x y" per line, full float64 precision, '#' comments).
func WritePointsTo(w io.Writer, pts []Point) error { return fileio.WritePoints(w, pts) }

// ReadPointsFrom parses a point set written by WritePointsTo (or any
// two-column whitespace-separated numeric file).
func ReadPointsFrom(r io.Reader) ([]Point, error) { return fileio.ReadPoints(r) }

// WriteSVG renders the network as a standalone SVG: the transmission graph
// G* as a faint background layer, the topology N in bold, and an optional
// node path highlighted in red. Intended for quick visual inspection
// (topoctl -svg).
func (nw *Network) WriteSVG(w io.Writer, highlight []int) error {
	return viz.Render(w, nw.top.Pts, []viz.Layer{
		{G: nw.transmissionGraph(), Stroke: "#bbbbbb", Width: 0.6, Opacity: 0.5},
		{G: nw.top.N, Stroke: "#1f77b4", Width: 1.4},
	}, viz.Options{Path: highlight})
}
