package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: toporouting
BenchmarkBalancerStepManyDests/dests10-8         	     385	   2914321 ns/op	    1201 B/op	       3 allocs/op
BenchmarkMaxBenefit/dests1000-8                  	45822000	        26.30 ns/op	       0 B/op	       0 allocs/op
BenchmarkInterferenceSets/n500-8                 	     178	   6600123 ns/op	  100352 B/op	       3 allocs/op
PASS
ok  	toporouting	12.3s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	mb, ok := got["BenchmarkMaxBenefit/dests1000"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if mb.NsPerOp != 26.30 || mb.AllocsPerOp != 0 {
		t.Fatalf("MaxBenefit parsed as %+v", mb)
	}
	is := got["BenchmarkInterferenceSets/n500"]
	if is.BytesPerOp != 100352 || is.AllocsPerOp != 3 {
		t.Fatalf("InterferenceSets parsed as %+v", is)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("parse accepted input with no benchmark lines")
	}
}

func TestGate(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA":    {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkB":    {NsPerOp: 1000},
		"BenchmarkGone": {NsPerOp: 5},
	}
	run := map[string]Result{
		"BenchmarkA":   {NsPerOp: 1250, AllocsPerOp: 100}, // +25% ns: ok; allocs blow-up: warn only
		"BenchmarkB":   {NsPerOp: 1400},                   // +40% ns: fail
		"BenchmarkNew": {NsPerOp: 7},                      // no baseline: skipped
	}
	var sb strings.Builder
	if failures := gate(&sb, base, run, 0.30, nil); failures != 1 {
		t.Fatalf("gate reported %d failures, want 1\n%s", failures, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"FAIL ", "warn ", "NEW  ", "GONE "} {
		if !strings.Contains(out, want) {
			t.Errorf("gate output missing %q:\n%s", want, out)
		}
	}
}

func TestGateAllocStrict(t *testing.T) {
	base := map[string]Result{
		"BenchmarkSessionDelta":  {NsPerOp: 1000, BytesPerOp: 5000, AllocsPerOp: 50},
		"BenchmarkServeTopology": {NsPerOp: 1000, BytesPerOp: 5000, AllocsPerOp: 50},
	}
	run := map[string]Result{
		"BenchmarkSessionDelta":  {NsPerOp: 1000, BytesPerOp: 9000, AllocsPerOp: 90}, // both regress
		"BenchmarkServeTopology": {NsPerOp: 1000, BytesPerOp: 9000, AllocsPerOp: 50}, // B/op regresses, unmatched
	}
	strict := regexp.MustCompile(`^BenchmarkSession`)
	var sb strings.Builder
	// SessionDelta fails twice (allocs + bytes); ServeTopology only warns.
	if failures := gate(&sb, base, run, 0.30, strict); failures != 2 {
		t.Fatalf("strict gate reported %d failures, want 2\n%s", failures, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "alloc-strict") {
		t.Errorf("output missing alloc-strict marker:\n%s", out)
	}
	if !strings.Contains(out, "warn-only") {
		t.Errorf("unmatched benchmark lost its warn-only leniency:\n%s", out)
	}

	// Within bounds: no failures even under strict matching.
	sb.Reset()
	ok := map[string]Result{
		"BenchmarkSessionDelta":  {NsPerOp: 1000, BytesPerOp: 5200, AllocsPerOp: 52},
		"BenchmarkServeTopology": {NsPerOp: 1000, BytesPerOp: 5000, AllocsPerOp: 50},
	}
	if failures := gate(&sb, base, ok, 0.30, strict); failures != 0 {
		t.Fatalf("in-bounds strict gate reported %d failures\n%s", failures, sb.String())
	}
}

// TestGateAllocStrictCoversCacheBench pins that the repo's default strict
// pattern (scripts/bench.sh BENCH_ALLOC_STRICT) covers the response-cache
// benchmark: an allocation regression on the cache-hit path — the whole
// point of serving memoized bytes — must fail the gate, not warn.
func TestGateAllocStrictCoversCacheBench(t *testing.T) {
	strict := regexp.MustCompile(`^Benchmark(ServeTopology|Session)`)
	if !strict.MatchString("BenchmarkServeTopologyCacheHit") {
		t.Fatal("default alloc-strict pattern no longer matches BenchmarkServeTopologyCacheHit")
	}
	base := map[string]Result{
		"BenchmarkServeTopologyCacheHit": {NsPerOp: 100, BytesPerOp: 2000, AllocsPerOp: 20},
	}
	run := map[string]Result{
		"BenchmarkServeTopologyCacheHit": {NsPerOp: 100, BytesPerOp: 2000, AllocsPerOp: 40},
	}
	var sb strings.Builder
	if failures := gate(&sb, base, run, 0.30, strict); failures != 1 {
		t.Fatalf("cache-hit alloc regression reported %d failures, want 1\n%s", failures, sb.String())
	}
}
