package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: toporouting
BenchmarkBalancerStepManyDests/dests10-8         	     385	   2914321 ns/op	    1201 B/op	       3 allocs/op
BenchmarkMaxBenefit/dests1000-8                  	45822000	        26.30 ns/op	       0 B/op	       0 allocs/op
BenchmarkInterferenceSets/n500-8                 	     178	   6600123 ns/op	  100352 B/op	       3 allocs/op
PASS
ok  	toporouting	12.3s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	mb, ok := got["BenchmarkMaxBenefit/dests1000"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if mb.NsPerOp != 26.30 || mb.AllocsPerOp != 0 {
		t.Fatalf("MaxBenefit parsed as %+v", mb)
	}
	is := got["BenchmarkInterferenceSets/n500"]
	if is.BytesPerOp != 100352 || is.AllocsPerOp != 3 {
		t.Fatalf("InterferenceSets parsed as %+v", is)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("parse accepted input with no benchmark lines")
	}
}

func TestGate(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA":    {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkB":    {NsPerOp: 1000},
		"BenchmarkGone": {NsPerOp: 5},
	}
	run := map[string]Result{
		"BenchmarkA":   {NsPerOp: 1250, AllocsPerOp: 100}, // +25% ns: ok; allocs blow-up: warn only
		"BenchmarkB":   {NsPerOp: 1400},                   // +40% ns: fail
		"BenchmarkNew": {NsPerOp: 7},                      // no baseline: skipped
	}
	var sb strings.Builder
	if failures := gate(&sb, base, run, 0.30); failures != 1 {
		t.Fatalf("gate reported %d failures, want 1\n%s", failures, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"FAIL ", "warn ", "NEW  ", "GONE "} {
		if !strings.Contains(out, want) {
			t.Errorf("gate output missing %q:\n%s", want, out)
		}
	}
}
