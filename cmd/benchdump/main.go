// Command benchdump turns `go test -bench` output into a stable JSON
// baseline and gates later runs against it.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchdump -out BENCH_baseline.json
//	go test -run '^$' -bench . -benchmem . | benchdump -baseline BENCH_baseline.json
//
// The first form parses benchmark lines from stdin (or -in file) and writes
// a JSON map from benchmark name (with the -N GOMAXPROCS suffix stripped)
// to {ns_per_op, bytes_per_op, allocs_per_op}.
//
// The second form additionally compares the parsed run against a committed
// baseline: a benchmark whose ns/op exceeds the baseline by more than
// -max-regress (default 0.30, i.e. +30%) fails the gate with exit status 1.
//
// -ratio asserts relative bounds WITHIN one run, immune to machine speed:
// "BenchmarkServeTopologyTraced/BenchmarkServeTopology<=1.05" fails when
// the traced serving path costs more than 1.05× the untraced one. Multiple
// comma-separated clauses are allowed; a clause naming a benchmark absent
// from the run fails rather than silently passing.
// B/op and allocs/op regressions are warn-only by default — allocation
// counts are deterministic yet intentionally allowed to move when a change
// trades memory for time. -alloc-strict takes a regexp of benchmark names
// for which that leniency is wrong: matching benchmarks FAIL the gate when
// B/op or allocs/op regress beyond -max-regress, the contract for serving
// hot paths (the pooled session snapshot/delta encoders) whose allocation
// profile is the optimization. Benchmarks present on only one side are
// reported and skipped, so adding or retiring a benchmark never blocks a
// PR by itself.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's per-op metrics.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches standard `go test -bench -benchmem` output:
//
//	BenchmarkName-8   123   456789 ns/op   1024 B/op   7 allocs/op
//
// The B/op and allocs/op columns are optional (absent without -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s]*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9]+) allocs/op)?`)

func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		var res Result
		res.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			res.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		// Repeated names (e.g. -count>1) keep the last run; fine for a
		// smoke gate, use -count=1 for baselines.
		out[m[1]] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return out, nil
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Result)
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func sortedNames(m map[string]Result) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// gate compares run against base and returns the number of hard failures.
// Benchmarks matching allocStrict (when non-nil) additionally fail — rather
// than warn — on B/op and allocs/op regressions beyond maxRegress.
func gate(w io.Writer, base, run map[string]Result, maxRegress float64, allocStrict *regexp.Regexp) int {
	failures := 0
	for _, name := range sortedNames(run) {
		got := run[name]
		want, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "NEW   %-55s %12.0f ns/op (no baseline, skipped)\n", name, got.NsPerOp)
			continue
		}
		ratio := 0.0
		if want.NsPerOp > 0 {
			ratio = got.NsPerOp/want.NsPerOp - 1
		}
		status := "ok   "
		if ratio > maxRegress {
			status = "FAIL "
			failures++
		} else if ratio < -maxRegress {
			status = "fast "
		}
		fmt.Fprintf(w, "%s %-55s %12.0f ns/op  baseline %12.0f  (%+.1f%%)\n",
			status, name, got.NsPerOp, want.NsPerOp, 100*ratio)
		strict := allocStrict != nil && allocStrict.MatchString(name)
		level, note := "warn ", "warn-only"
		if strict {
			level, note = "FAIL ", "alloc-strict"
		}
		if want.AllocsPerOp > 0 && got.AllocsPerOp > want.AllocsPerOp*(1+maxRegress) {
			fmt.Fprintf(w, "%s %-55s allocs/op %g vs baseline %g (%s)\n",
				level, name, got.AllocsPerOp, want.AllocsPerOp, note)
			if strict {
				failures++
			}
		}
		if want.BytesPerOp > 0 && got.BytesPerOp > want.BytesPerOp*(1+maxRegress) {
			fmt.Fprintf(w, "%s %-55s B/op %g vs baseline %g (%s)\n",
				level, name, got.BytesPerOp, want.BytesPerOp, note)
			if strict {
				failures++
			}
		}
	}
	for _, name := range sortedNames(base) {
		if _, ok := run[name]; !ok {
			fmt.Fprintf(w, "GONE  %-55s in baseline but not in this run (skipped)\n", name)
		}
	}
	return failures
}

// ratioClause is one within-run bound: num's ns/op must be ≤ max × den's.
type ratioClause struct {
	num, den string
	max      float64
}

// parseRatios parses comma-separated "A/B<=1.05" clauses.
func parseRatios(spec string) ([]ratioClause, error) {
	var clauses []ratioClause
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		names, bound, ok := strings.Cut(part, "<=")
		if !ok {
			return nil, fmt.Errorf("ratio clause %q: want NumBench/DenBench<=max", part)
		}
		num, den, ok := strings.Cut(names, "/")
		if !ok || num == "" || den == "" {
			return nil, fmt.Errorf("ratio clause %q: want NumBench/DenBench<=max", part)
		}
		max, err := strconv.ParseFloat(strings.TrimSpace(bound), 64)
		if err != nil || max <= 0 {
			return nil, fmt.Errorf("ratio clause %q: bad bound %q", part, bound)
		}
		clauses = append(clauses, ratioClause{num: strings.TrimSpace(num), den: strings.TrimSpace(den), max: max})
	}
	if len(clauses) == 0 {
		return nil, fmt.Errorf("empty ratio spec %q", spec)
	}
	return clauses, nil
}

// gateRatios checks every clause against one run's results and returns the
// number of failures (missing benchmarks count as failures).
func gateRatios(w io.Writer, run map[string]Result, clauses []ratioClause) int {
	failures := 0
	for _, c := range clauses {
		num, okN := run[c.num]
		den, okD := run[c.den]
		if !okN || !okD || den.NsPerOp <= 0 {
			fmt.Fprintf(w, "FAIL  ratio %s/%s: benchmark missing from run\n", c.num, c.den)
			failures++
			continue
		}
		ratio := num.NsPerOp / den.NsPerOp
		status := "ok   "
		if ratio > c.max {
			status = "FAIL "
			failures++
		}
		fmt.Fprintf(w, "%s ratio %s/%s = %.3f (max %.3f)\n", status, c.num, c.den, ratio, c.max)
	}
	return failures
}

func run() error {
	in := flag.String("in", "", "read bench output from file instead of stdin")
	out := flag.String("out", "", "write parsed results as JSON to this file ('-' for stdout)")
	baseline := flag.String("baseline", "", "compare against this JSON baseline and gate on ns/op regressions")
	maxRegress := flag.Float64("max-regress", 0.30, "maximum tolerated relative ns/op regression before failing")
	ratios := flag.String("ratio", "", `within-run ns/op bounds, e.g. "BenchA/BenchB<=1.05" (comma-separated)`)
	allocStrict := flag.String("alloc-strict", "", "regexp of benchmark names whose B/op and allocs/op regressions fail the gate instead of warning")
	flag.Parse()

	var allocStrictRe *regexp.Regexp
	if *allocStrict != "" {
		var err error
		allocStrictRe, err = regexp.Compile(*allocStrict)
		if err != nil {
			return fmt.Errorf("-alloc-strict: %w", err)
		}
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	results, err := parse(src)
	if err != nil {
		return err
	}

	if *out != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		} else {
			fmt.Fprintf(os.Stderr, "benchdump: wrote %d benchmarks to %s\n", len(results), *out)
		}
	}

	if *baseline != "" {
		base, err := load(*baseline)
		if err != nil {
			return err
		}
		if failures := gate(os.Stdout, base, results, *maxRegress, allocStrictRe); failures > 0 {
			return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%", failures, 100**maxRegress)
		}
	}
	if *ratios != "" {
		clauses, err := parseRatios(*ratios)
		if err != nil {
			return err
		}
		if failures := gateRatios(os.Stdout, results, clauses); failures > 0 {
			return fmt.Errorf("%d ratio bound(s) violated", failures)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}
