// Command experiments runs the paper-reproduction experiment suite
// (E1–E12, see DESIGN.md) and prints the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-run all] [-full]
//
// -run selects a single experiment id (e.g. E4); -full uses the
// paper-scale sweep (several minutes) instead of the quick scale.
package main

import (
	"flag"
	"fmt"
	"os"

	"toporouting"
)

func main() {
	var (
		run  = flag.String("run", "all", "experiment id (E1..E12, E7b) or 'all'")
		full = flag.Bool("full", false, "paper-scale sweep (slow)")
	)
	flag.Parse()

	ids := []string{*run}
	if *run == "all" {
		ids = toporouting.ExperimentIDs()
	}
	for _, id := range ids {
		out, err := toporouting.RunExperiment(id, *full)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			fmt.Fprintln(os.Stderr, "available:", toporouting.ExperimentIDs())
			os.Exit(1)
		}
		fmt.Print(out) // stream per experiment: long sweeps show progress
	}
}
