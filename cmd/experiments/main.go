// Command experiments runs the paper-reproduction experiment suite
// (E1–E12, see DESIGN.md) and prints the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-run all] [-full] [-metrics] [-trace run.jsonl]
//	            [-cpuprofile cpu.out] [-memprofile mem.out] [-pprof-addr :6060]
//
// -run selects a single experiment id (e.g. E4); -full uses the
// paper-scale sweep (several minutes) instead of the quick scale.
//
// Observability: -trace streams JSONL events from the simulation-backed
// experiments; -metrics prints the aggregate telemetry snapshot after the
// suite; -cpuprofile/-memprofile write runtime/pprof profiles of the whole
// sweep; -pprof-addr serves net/http/pprof and expvar live (useful for the
// multi-minute -full runs).
package main

import (
	"flag"
	"fmt"
	"os"

	"toporouting"
)

// main delegates to run so deferred cleanups (trace sink flush, profile
// writers) execute even on error paths — os.Exit here would skip them.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runID = flag.String("run", "all", "experiment id (E1..E12, E7b) or 'all'")
		full  = flag.Bool("full", false, "paper-scale sweep (slow)")

		metricsOut = flag.Bool("metrics", false, "print the aggregate telemetry snapshot after the suite")
		tracePath  = flag.String("trace", "", "write a JSONL trace of instrumented experiments to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
	)
	flag.Parse()

	stopProf, err := toporouting.StartProfiling(*cpuProf, *memProf, *pprofAddr)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: profiling:", err)
		}
	}()

	var tel *toporouting.Telemetry
	if *tracePath != "" {
		sink, serr := toporouting.CreateJSONLTrace(*tracePath)
		if serr != nil {
			return serr
		}
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace:", err)
			}
		}()
		tel = toporouting.NewTracedTelemetry(sink)
	} else if *metricsOut || *pprofAddr != "" {
		tel = toporouting.NewTelemetry()
	}
	toporouting.PublishExpvar("telemetry", tel)

	ids := []string{*runID}
	if *runID == "all" {
		ids = toporouting.ExperimentIDs()
	}
	for _, id := range ids {
		out, err := toporouting.RunExperimentTraced(id, *full, tel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "available:", toporouting.ExperimentIDs())
			return err
		}
		fmt.Print(out) // stream per experiment: long sweeps show progress
	}
	if *metricsOut && tel != nil {
		fmt.Println()
		fmt.Print(tel.Snapshot().String())
	}
	return nil
}
