// Command topoctl builds a ΘALG topology over a generated point set and
// reports its structural properties: degree, connectivity, energy- and
// distance-stretch, and interference number.
//
// Usage:
//
//	topoctl [-dist uniform] [-n 400] [-seed 1] [-theta 0.5236]
//	        [-kappa 2] [-delta 0.5] [-sources 40] [-distributed] [-edges]
//	        [-workers 0]
//	        [-metrics] [-trace build.jsonl]
//	        [-cpuprofile cpu.out] [-memprofile mem.out] [-pprof-addr :6060]
//
//	topoctl dist-build [-dist uniform] [-n 400] [-seed 1] [-theta 0.5236]
//	        [-drop 0] [-delay 0] [-crash 0] [-edges] [-metrics]
//	        [-trace dist.jsonl]
//
// The dist-build subcommand runs the asynchronous message-passing protocol
// engine: every node is an independent actor exchanging HELLO / SELECT /
// GRANT / ACK messages over a faulty medium (-drop, -delay, -crash), and the
// run is certified against the centralized builder — edge-identical when
// loss-free, connected and degree-bounded under faults. -workers on the main
// command caps the worker pool of the centralized parallel builder (0 =
// sequential).
//
// Observability: -trace streams the ΘALG build events (phase timings,
// distributed protocol rounds) as JSONL; -metrics prints the telemetry
// snapshot after the build; -cpuprofile/-memprofile write runtime/pprof
// profiles; -pprof-addr serves net/http/pprof and expvar.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"toporouting"
)

// main delegates to run/distBuild so deferred cleanups (trace sink flush,
// profile writers) execute even on error paths — os.Exit here would skip
// them.
func main() {
	var err error
	if len(os.Args) > 1 && os.Args[1] == "dist-build" {
		err = distBuild(os.Args[2:])
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoctl:", err)
		os.Exit(1)
	}
}

// newTrace installs the optional JSONL trace sink and returns the telemetry
// scope plus a cleanup for the caller to defer.
func newTrace(tracePath string, metricsOut bool) (*toporouting.Telemetry, func(), error) {
	if tracePath != "" {
		sink, err := toporouting.CreateJSONLTrace(tracePath)
		if err != nil {
			return nil, nil, err
		}
		cleanup := func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "topoctl: trace:", err)
			}
		}
		return toporouting.NewTracedTelemetry(sink), cleanup, nil
	}
	if metricsOut {
		return toporouting.NewTelemetry(), func() {}, nil
	}
	return nil, func() {}, nil
}

// distBuild is the dist-build subcommand: build through the asynchronous
// message-passing engine and report the protocol run and its convergence
// certificate.
func distBuild(args []string) error {
	fs := flag.NewFlagSet("topoctl dist-build", flag.ExitOnError)
	var (
		dist      = fs.String("dist", "uniform", "point distribution: uniform|civilized|clustered|grid|expchain|ring|bridge")
		n         = fs.Int("n", 400, "number of nodes")
		seed      = fs.Int64("seed", 1, "generator and protocol seed")
		theta     = fs.Float64("theta", math.Pi/6, "ΘALG cone angle (0, π/3]")
		drop      = fs.Float64("drop", 0, "per-link message drop probability [0, 1)")
		delay     = fs.Int("delay", 0, "max extra delivery delay (ticks)")
		crash     = fs.Int("crash", 0, "number of node crash/restart cycles")
		edges     = fs.Bool("edges", false, "dump the edge list")
		metricsOK = fs.Bool("metrics", false, "print the telemetry snapshot after the build")
		tracePath = fs.String("trace", "", "write a JSONL build trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tel, cleanup, err := newTrace(*tracePath, *metricsOK)
	if err != nil {
		return err
	}
	defer cleanup()

	pts, err := toporouting.GeneratePoints(*dist, *n, *seed)
	if err != nil {
		return err
	}
	faults := toporouting.FaultPlan{Drop: *drop, MaxDelay: *delay, Crashes: *crash}
	nw, rep, err := toporouting.BuildNetworkDistributedAsync(pts, toporouting.Options{Theta: *theta, Telemetry: tel}, faults, *seed)
	if err != nil {
		return err
	}

	st, cert := rep.Stats, rep.Certificate
	fmt.Printf("distribution   %s (n=%d, seed=%d)\n", *dist, len(pts), *seed)
	fmt.Printf("faults         drop=%.2f delay≤%d crashes=%d\n", *drop, *delay, *crash)
	fmt.Printf("messages       %d sent, %d delivered, %d lost (%d hello, %d reply, %d select, %d grant, %d ack)\n",
		st.Sent, st.Delivered, st.Dropped, st.Hellos, st.HelloReplies, st.Selects, st.Grants, st.Acks)
	fmt.Printf("reliability    %d retries, %d transfers expired, mailbox high-water %d (%d overflow drops)\n",
		st.Retries, st.Expired, st.MailboxHighWater, st.MailboxDropped)
	if st.Crashes > 0 {
		fmt.Printf("faults fired   %d crashes, %d restarts\n", st.Crashes, st.Restarts)
	}
	fmt.Printf("convergence    %s\n", cert)
	fmt.Printf("certificate    held: %v\n", cert.Holds())
	fmt.Printf("edges          %d\n", nw.NumEdges())
	fmt.Printf("max degree     %d (Lemma 2.1 bound %d)\n", nw.MaxDegree(), nw.DegreeBound())
	fmt.Printf("connected      %v (G*: %v)\n", nw.Connected(), nw.TransmissionGraphConnected())
	if *edges {
		for _, e := range nw.Edges() {
			fmt.Printf("%d %d\n", e[0], e[1])
		}
	}
	if *metricsOK && tel != nil {
		fmt.Println()
		fmt.Print(tel.Snapshot().String())
	}
	return nil
}

func run() error {
	var (
		dist        = flag.String("dist", "uniform", "point distribution: uniform|civilized|clustered|grid|expchain|ring|bridge")
		n           = flag.Int("n", 400, "number of nodes")
		seed        = flag.Int64("seed", 1, "generator seed")
		theta       = flag.Float64("theta", math.Pi/6, "ΘALG cone angle (0, π/3]")
		kappa       = flag.Float64("kappa", 2, "path-loss exponent κ ≥ 2")
		delta       = flag.Float64("delta", 0.5, "interference guard zone Δ > 0")
		srcs        = flag.Int("sources", 40, "Dijkstra sources for stretch (0 = exact)")
		distributed = flag.Bool("distributed", false, "use the 3-round message-passing protocol")
		workers     = flag.Int("workers", 0, "cap the parallel builder's worker pool (0 = sequential builder)")
		edges       = flag.Bool("edges", false, "dump the edge list")
		svgPath     = flag.String("svg", "", "write an SVG rendering (G* faint, N bold) to this file")
		pointsIn    = flag.String("points", "", "read node positions from this file instead of generating")
		pointsOut   = flag.String("savepoints", "", "write the node positions to this file")

		metricsOut = flag.Bool("metrics", false, "print the telemetry snapshot after the build")
		tracePath  = flag.String("trace", "", "write a JSONL build trace to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
	)
	flag.Parse()

	stopProf, err := toporouting.StartProfiling(*cpuProf, *memProf, *pprofAddr)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "topoctl: profiling:", err)
		}
	}()

	tel, cleanup, err := newTrace(*tracePath, *metricsOut || *pprofAddr != "")
	if err != nil {
		return err
	}
	defer cleanup()
	toporouting.PublishExpvar("telemetry", tel)

	var pts []toporouting.Point
	if *pointsIn != "" {
		f, ferr := os.Open(*pointsIn)
		if ferr != nil {
			return ferr
		}
		pts, err = toporouting.ReadPointsFrom(f)
		f.Close()
	} else {
		pts, err = toporouting.GeneratePoints(*dist, *n, *seed)
	}
	if err != nil {
		return err
	}
	if *pointsOut != "" {
		f, ferr := os.Create(*pointsOut)
		if ferr != nil {
			return ferr
		}
		if err := toporouting.WritePointsTo(f, pts); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	opts := toporouting.Options{Theta: *theta, Kappa: *kappa, Delta: *delta, Telemetry: tel}

	var nw *toporouting.Network
	switch {
	case *distributed:
		var st toporouting.ProtocolStats
		nw, st, err = toporouting.BuildNetworkDistributed(pts, opts)
		if err == nil {
			fmt.Printf("protocol: %d position, %d neighborhood, %d connection msgs (%d deliveries)\n",
				st.PositionMsgs, st.NeighborhoodMsgs, st.ConnectionMsgs, st.Deliveries)
		}
	case *workers > 0:
		nw, err = toporouting.BuildNetworkParallel(pts, opts, *workers)
	default:
		nw, err = toporouting.BuildNetwork(pts, opts)
	}
	if err != nil {
		return err
	}

	o := nw.Options()
	fmt.Printf("distribution   %s (n=%d, seed=%d)\n", *dist, len(pts), *seed)
	fmt.Printf("theta          %.4f rad (%d sectors)\n", o.Theta, int(math.Round(2*math.Pi/o.Theta)))
	fmt.Printf("range          %.5f\n", o.Range)
	fmt.Printf("edges          %d\n", nw.NumEdges())
	fmt.Printf("max degree     %d (Lemma 2.1 bound %d)\n", nw.MaxDegree(), nw.DegreeBound())
	fmt.Printf("connected      %v (G*: %v)\n", nw.Connected(), nw.TransmissionGraphConnected())
	es := nw.EnergyStretch(*srcs)
	fmt.Printf("energy stretch max=%.3f mean=%.3f p95=%.3f (κ=%.1f, %d pairs)\n",
		es.Max, es.Mean, es.P95, o.Kappa, es.Pairs)
	ds := nw.DistanceStretch(*srcs)
	fmt.Printf("dist stretch   max=%.3f mean=%.3f p95=%.3f\n", ds.Max, ds.Mean, ds.P95)
	fmt.Printf("interference   I=%d (Δ=%.2f)\n", nw.InterferenceNumber(), o.Delta)

	if *edges {
		for _, e := range nw.Edges() {
			fmt.Printf("%d %d\n", e[0], e[1])
		}
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nw.WriteSVG(f, nil); err != nil {
			return err
		}
		fmt.Printf("svg            %s\n", *svgPath)
	}
	if *metricsOut && tel != nil {
		fmt.Println()
		fmt.Print(tel.Snapshot().String())
	}
	return nil
}
