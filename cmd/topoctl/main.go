// Command topoctl builds a ΘALG topology over a generated point set and
// reports its structural properties: degree, connectivity, energy- and
// distance-stretch, and interference number.
//
// Usage:
//
//	topoctl [-dist uniform] [-n 400] [-seed 1] [-theta 0.5236]
//	        [-kappa 2] [-delta 0.5] [-sources 40] [-distributed] [-edges]
//	        [-metrics] [-trace build.jsonl]
//	        [-cpuprofile cpu.out] [-memprofile mem.out] [-pprof-addr :6060]
//
// Observability: -trace streams the ΘALG build events (phase timings,
// distributed protocol rounds) as JSONL; -metrics prints the telemetry
// snapshot after the build; -cpuprofile/-memprofile write runtime/pprof
// profiles; -pprof-addr serves net/http/pprof and expvar.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"toporouting"
)

func main() {
	var (
		dist        = flag.String("dist", "uniform", "point distribution: uniform|civilized|clustered|grid|expchain|ring|bridge")
		n           = flag.Int("n", 400, "number of nodes")
		seed        = flag.Int64("seed", 1, "generator seed")
		theta       = flag.Float64("theta", math.Pi/6, "ΘALG cone angle (0, π/3]")
		kappa       = flag.Float64("kappa", 2, "path-loss exponent κ ≥ 2")
		delta       = flag.Float64("delta", 0.5, "interference guard zone Δ > 0")
		srcs        = flag.Int("sources", 40, "Dijkstra sources for stretch (0 = exact)")
		distributed = flag.Bool("distributed", false, "use the 3-round message-passing protocol")
		edges       = flag.Bool("edges", false, "dump the edge list")
		svgPath     = flag.String("svg", "", "write an SVG rendering (G* faint, N bold) to this file")
		pointsIn    = flag.String("points", "", "read node positions from this file instead of generating")
		pointsOut   = flag.String("savepoints", "", "write the node positions to this file")

		metricsOut = flag.Bool("metrics", false, "print the telemetry snapshot after the build")
		tracePath  = flag.String("trace", "", "write a JSONL build trace to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
	)
	flag.Parse()

	stopProf, err := toporouting.StartProfiling(*cpuProf, *memProf, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoctl:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "topoctl: profiling:", err)
		}
	}()

	var tel *toporouting.Telemetry
	if *tracePath != "" {
		sink, serr := toporouting.CreateJSONLTrace(*tracePath)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "topoctl:", serr)
			os.Exit(1)
		}
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "topoctl: trace:", err)
			}
		}()
		tel = toporouting.NewTracedTelemetry(sink)
	} else if *metricsOut || *pprofAddr != "" {
		tel = toporouting.NewTelemetry()
	}
	toporouting.PublishExpvar("telemetry", tel)

	var pts []toporouting.Point
	if *pointsIn != "" {
		f, ferr := os.Open(*pointsIn)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "topoctl:", ferr)
			os.Exit(1)
		}
		pts, err = toporouting.ReadPointsFrom(f)
		f.Close()
	} else {
		pts, err = toporouting.GeneratePoints(*dist, *n, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoctl:", err)
		os.Exit(1)
	}
	if *pointsOut != "" {
		f, ferr := os.Create(*pointsOut)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "topoctl:", ferr)
			os.Exit(1)
		}
		if err := toporouting.WritePointsTo(f, pts); err != nil {
			fmt.Fprintln(os.Stderr, "topoctl:", err)
			os.Exit(1)
		}
		f.Close()
	}
	opts := toporouting.Options{Theta: *theta, Kappa: *kappa, Delta: *delta, Telemetry: tel}

	var nw *toporouting.Network
	if *distributed {
		var st toporouting.ProtocolStats
		nw, st, err = toporouting.BuildNetworkDistributed(pts, opts)
		if err == nil {
			fmt.Printf("protocol: %d position, %d neighborhood, %d connection msgs (%d deliveries)\n",
				st.PositionMsgs, st.NeighborhoodMsgs, st.ConnectionMsgs, st.Deliveries)
		}
	} else {
		nw, err = toporouting.BuildNetwork(pts, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoctl:", err)
		os.Exit(1)
	}

	o := nw.Options()
	fmt.Printf("distribution   %s (n=%d, seed=%d)\n", *dist, len(pts), *seed)
	fmt.Printf("theta          %.4f rad (%d sectors)\n", o.Theta, int(math.Round(2*math.Pi/o.Theta)))
	fmt.Printf("range          %.5f\n", o.Range)
	fmt.Printf("edges          %d\n", nw.NumEdges())
	fmt.Printf("max degree     %d (Lemma 2.1 bound %d)\n", nw.MaxDegree(), nw.DegreeBound())
	fmt.Printf("connected      %v (G*: %v)\n", nw.Connected(), nw.TransmissionGraphConnected())
	es := nw.EnergyStretch(*srcs)
	fmt.Printf("energy stretch max=%.3f mean=%.3f p95=%.3f (κ=%.1f, %d pairs)\n",
		es.Max, es.Mean, es.P95, o.Kappa, es.Pairs)
	ds := nw.DistanceStretch(*srcs)
	fmt.Printf("dist stretch   max=%.3f mean=%.3f p95=%.3f\n", ds.Max, ds.Mean, ds.P95)
	fmt.Printf("interference   I=%d (Δ=%.2f)\n", nw.InterferenceNumber(), o.Delta)

	if *edges {
		for _, e := range nw.Edges() {
			fmt.Printf("%d %d\n", e[0], e[1])
		}
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topoctl:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := nw.WriteSVG(f, nil); err != nil {
			fmt.Fprintln(os.Stderr, "topoctl:", err)
			os.Exit(1)
		}
		fmt.Printf("svg            %s\n", *svgPath)
	}
	if *metricsOut && tel != nil {
		fmt.Println()
		fmt.Print(tel.Snapshot().String())
	}
}
