// Command routesim runs an adversarial routing simulation: ΘALG topology,
// a selectable MAC layer, and the (T,γ)-balancing router under sustained
// sink-directed traffic.
//
// Usage:
//
//	routesim [-dist uniform] [-n 200] [-seed 1] [-mac given|random|honeycomb]
//	         [-steps 4000] [-rate 2] [-sinks 3] [-buffer 60] [-T 0] [-gamma 0]
//	         [-mobility 0] [-mobstep 0.01]
//	         [-churn 0] [-churn-every 50] [-churn-step 0.02]
//	         [-distributed] [-drop 0] [-delay 0] [-crash 0]
//	         [-workers 0] [-tiles 0]
//	         [-json] [-metrics] [-trace run.jsonl]
//	         [-cpuprofile cpu.out] [-memprofile mem.out] [-pprof-addr :6060]
//
// Churn: -churn k displaces k random nodes every -churn-every steps and
// repairs the live topology incrementally (topology.Dynamic) instead of
// rebuilding it, while the router keeps its queues; the summary reports
// repairs and mean nodes touched per repair. Mutually exclusive with
// -mobility.
//
// Distributed mode: -distributed builds the topology with the asynchronous
// message-passing protocol engine (every node an independent actor over a
// faulty medium) instead of the centralized builder; -drop, -delay, and
// -crash inject per-link Bernoulli loss, bounded random delivery delay, and
// node crash/restart cycles. The summary reports the protocol traffic,
// rounds-to-convergence, and whether the convergence certificate held.
// Mutually exclusive with -churn; requires a ΘALG MAC (given or random).
//
// -workers caps the worker pool of centralized topology builds (0 = the
// sequential builder) and of interference-set construction; output is
// bit-identical for every worker count. -tiles k > 0 routes full builds
// through the tile-sharded builder (k×k tiles, halo-stitched) — same
// topology, lower peak memory on large n.
//
// Observability: -trace streams one JSON event per line (router steps, MAC
// rounds, topology builds, rebuilds) into the given file; -metrics prints
// the telemetry snapshot after the run; -json emits the SimulationResult
// (including the metrics snapshot when telemetry is active) as a single
// JSON object on stdout for scripting; -cpuprofile/-memprofile write
// runtime/pprof profiles; -pprof-addr serves net/http/pprof and expvar
// (the live snapshot is published under "telemetry").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"toporouting"
)

// main delegates to run so deferred cleanups (trace sink flush, profile
// writers) execute even on error paths — os.Exit here would skip them.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dist     = flag.String("dist", "uniform", "point distribution")
		n        = flag.Int("n", 200, "number of nodes")
		seed     = flag.Int64("seed", 1, "seed")
		macName  = flag.String("mac", "given", "MAC layer: given|random|honeycomb")
		steps    = flag.Int("steps", 4000, "simulation steps")
		rate     = flag.Int("rate", 2, "packets injected per step")
		sinks    = flag.Int("sinks", 3, "number of sink destinations")
		buffer   = flag.Int("buffer", 60, "per-(node,dest) buffer size")
		tParam   = flag.Float64("T", 0, "balancing threshold T")
		gamma    = flag.Float64("gamma", 0, "cost sensitivity γ")
		mobility = flag.Int("mobility", 0, "rebuild topology every k steps (0 = static)")
		mobstep  = flag.Float64("mobstep", 0.01, "mobility displacement per move")

		churn      = flag.Int("churn", 0, "incremental churn: displace this many nodes per epoch, repairing the topology locally (0 = off)")
		churnEvery = flag.Int("churn-every", 50, "steps between churn epochs")
		churnStep  = flag.Float64("churn-step", 0.02, "max per-coordinate churn displacement")

		distributed = flag.Bool("distributed", false, "build the topology with the asynchronous message-passing protocol engine")
		drop        = flag.Float64("drop", 0, "distributed mode: per-link message drop probability [0, 1)")
		delay       = flag.Int("delay", 0, "distributed mode: max extra delivery delay (ticks)")
		crash       = flag.Int("crash", 0, "distributed mode: number of node crash/restart cycles")

		workers = flag.Int("workers", 0, "cap the topology-build, interference-set and Monte-Carlo worker pools (0 = sequential build, GOMAXPROCS Monte-Carlo)")
		tiles   = flag.Int("tiles", 0, "build the topology tile-sharded over a k×k tile grid (0 = single-arena builder); output is identical")
		runs    = flag.Int("runs", 1, "Monte-Carlo repetitions over seeds seed..seed+runs-1 (reports per-seed delivery)")

		jsonOut    = flag.Bool("json", false, "emit the result as a single JSON object")
		metricsOut = flag.Bool("metrics", false, "print the telemetry snapshot after the run")
		tracePath  = flag.String("trace", "", "write a JSONL step-level trace to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
	)
	flag.Parse()

	stopProf, err := toporouting.StartProfiling(*cpuProf, *memProf, *pprofAddr)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "routesim: profiling:", err)
		}
	}()

	var tel *toporouting.Telemetry
	if *tracePath != "" {
		sink, err := toporouting.CreateJSONLTrace(*tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "routesim: trace:", err)
			}
		}()
		tel = toporouting.NewTracedTelemetry(sink)
	} else if *metricsOut || *jsonOut || *pprofAddr != "" {
		tel = toporouting.NewTelemetry()
	}
	toporouting.PublishExpvar("telemetry", tel)

	pts, err := toporouting.GeneratePoints(*dist, *n, *seed)
	if err != nil {
		return err
	}
	var mac toporouting.MAC
	switch *macName {
	case "given":
		mac = toporouting.MACGiven
	case "random":
		mac = toporouting.MACRandom
	case "honeycomb":
		mac = toporouting.MACHoneycomb
	default:
		return fmt.Errorf("unknown MAC %q", *macName)
	}
	var faults *toporouting.FaultPlan
	if *distributed {
		faults = &toporouting.FaultPlan{Drop: *drop, MaxDelay: *delay, Crashes: *crash}
	} else if *drop != 0 || *delay != 0 || *crash != 0 {
		return fmt.Errorf("-drop/-delay/-crash require -distributed")
	}
	sinkIDs := make([]int, *sinks)
	for i := range sinkIDs {
		sinkIDs[i] = (i*len(pts))/(*sinks+1) + 1
	}
	simOpts := toporouting.SimulationOptions{
		Points:        pts,
		MAC:           mac,
		Router:        toporouting.RouterOptions{T: *tParam, Gamma: *gamma, BufferSize: *buffer},
		Traffic:       toporouting.SinksTraffic(len(pts), sinkIDs, *rate, *steps/2),
		Steps:         *steps,
		MobilityEvery: *mobility,
		MobilityStep:  *mobstep,
		ChurnEvery:    churnEveryOrZero(*churn, *churnEvery),
		ChurnMoves:    *churn,
		ChurnStep:     *churnStep,
		DistFaults:    faults,
		Workers:       *workers,
		Tiles:         *tiles,
		Seed:          *seed,
		Telemetry:     tel,
	}

	if *runs > 1 {
		seeds := make([]int64, *runs)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		results, err := toporouting.SimulateMonteCarlo(simOpts, seeds, *workers)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(results)
		}
		fmt.Printf("monte carlo    %d runs, worker cap %d\n", *runs, *workers)
		for i, r := range results {
			fmt.Printf("seed %-8d delivered %d/%d (%.1f%%), dropped %d, cost/delivery %.4f\n",
				seeds[i], r.Delivered, r.Accepted, pct(r.Delivered, r.Accepted), r.Dropped, r.AvgCost)
		}
		if *metricsOut && results[0].Metrics != nil {
			fmt.Println()
			fmt.Print(results[0].Metrics.String())
		}
		return nil
	}

	res, err := toporouting.Simulate(simOpts)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Printf("mac            %s\n", *macName)
	fmt.Printf("steps          %d (injecting %d/step for first half)\n", *steps, *rate)
	fmt.Printf("accepted       %d\n", res.Accepted)
	fmt.Printf("delivered      %d (%.1f%% of accepted)\n", res.Delivered, pct(res.Delivered, res.Accepted))
	fmt.Printf("dropped        %d (admission control)\n", res.Dropped)
	fmt.Printf("still queued   %d\n", res.Queued)
	fmt.Printf("transmissions  %d\n", res.Moves)
	fmt.Printf("total cost     %.3f (%.4f per delivery)\n", res.TotalCost, res.AvgCost)
	if res.I > 0 {
		fmt.Printf("interference   I=%d (random MAC activation 1/(2I_e))\n", res.I)
	}
	if res.Rebuilds > 0 {
		fmt.Printf("mobility       %d topology rebuilds\n", res.Rebuilds)
	}
	if res.ChurnEvents > 0 {
		fmt.Printf("churn          %d incremental repairs, %.1f nodes touched/repair\n",
			res.ChurnEvents, float64(res.TouchedNodes)/float64(res.ChurnEvents))
	}
	if *distributed {
		fmt.Printf("protocol       %d msgs sent, %d lost (drop=%.2f delay≤%d crashes=%d)\n",
			res.DistMsgs, res.DistDropped, *drop, *delay, *crash)
		fmt.Printf("convergence    %d rounds, certificate held: %v\n", res.DistRounds, res.DistConverged)
	}
	if res.MaxDegree > 0 {
		fmt.Printf("max degree     %d\n", res.MaxDegree)
	}
	if *metricsOut && res.Metrics != nil {
		fmt.Println()
		fmt.Print(res.Metrics.String())
	}
	return nil
}

// churnEveryOrZero disables churn entirely (ChurnEvery = 0) when no moves
// are requested, so plain runs never enter the incremental path.
func churnEveryOrZero(moves, every int) int {
	if moves <= 0 {
		return 0
	}
	return every
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
