// Command toporoutingd serves the topology-control and routing stack over
// HTTP/JSON: topology builds (centralized, parallel, or the asynchronous
// distributed protocol engine), routing simulations (synchronous or as
// pollable async jobs), and interference queries.
//
// Usage:
//
//	toporoutingd [-addr :8080] [-queue 64] [-workers 0]
//	             [-default-timeout 30s] [-max-timeout 5m]
//	             [-max-nodes 50000] [-max-steps 10000000] [-job-ttl 10m]
//	             [-cache on|off] [-cache-bytes 67108864]
//	             [-grace 10s] [-trace trace.jsonl] [-expvar toporouting]
//	             [-log text|json|off] [-trace-slow 32] [-trace-sample 64]
//	             [-max-sessions 256] [-max-tenant-sessions 8]
//	             [-session-rate 1000] [-session-ring 256] [-session-ttl 10m]
//	             [-shards 1] [-replicas 0] [-staleness-gens 64]
//
// Endpoints:
//
//	POST /v1/topology              build a topology; {"mode":"centralized|parallel|distributed", ...}
//	POST /v1/simulate              run a simulation; {"async":true} returns 202 + job id
//	POST /v1/interference          interference number of a built topology
//	GET  /v1/jobs/{id}             poll an async job
//	POST /v1/sessions              host a topology as a churn session (201 + id)
//	POST /v1/sessions/{id}/events  stream NDJSON join/leave/move events; per-event echo
//	GET  /v1/sessions/{id}         snapshot, or delta/304 with If-None-Match: <gen>
//	GET  /v1/sessions/{id}/watch   live deltas over SSE
//	DELETE /v1/sessions/{id}       end the session
//	GET  /healthz                  liveness
//	GET  /readyz                   readiness (503 while draining)
//	GET  /metrics                  Prometheus text exposition (?format=json for the JSON snapshot)
//	GET  /debug/traces             retained request traces (slowest + uniform sample)
//	GET  /debug/vars               expvar (live telemetry under the -expvar name)
//	GET  /debug/pprof/             net/http/pprof
//
// Sessions are multi-tenant: the X-Tenant-ID header (default "default")
// scopes lookups and quotas — session count per tenant, a shared event-rate
// token bucket, and idle-TTL eviction. Quota rejections answer 429 with
// Retry-After.
//
// With -shards > 1 the session layer runs sharded: tenants map to registry
// shards by consistent hashing, -replicas read replicas per session tail
// each delta stream by generation cursor (serving conditional GETs and
// watches while within -staleness-gens of the acked stream; the
// X-Session-Source response header reports which side answered), and a
// dead shard's sessions fail over from their replica logs with zero acked
// events lost. GET /debug/cluster reports placement; POST
// /debug/cluster/kill?shard=N hard-stops a shard (fault injection — the
// in-process equivalent of SIGKILLing its host).
//
// Every /v1 request is traced as a span tree — admission wait, worker
// pickup, build phases, simulation steps, response encode — and logged as
// one structured line carrying its request and trace ids (echoed to the
// client as X-Request-ID / X-Trace-ID). The -trace-slow slowest traces
// plus a -trace-sample uniform sample are retained in memory and served
// at /debug/traces; with -trace set, finished spans also stream to the
// JSONL sink alongside step-level events.
//
// Stateless topology and interference responses are memoized in a
// byte-bounded, digest-keyed cache: ΘALG output is a pure function of the
// request, so a repeat request is answered from the exact cached bytes
// (X-Cache: hit) or coalesced onto an in-flight identical build. The cache
// key doubles as a strong ETag; If-None-Match answers 304 Not Modified
// without building. -cache-bytes sizes the cache (default 64 MiB),
// -cache off disables it entirely.
//
// Load is shed explicitly: requests queue on a bounded admission queue
// drained by a fixed worker pool, and a full queue answers 429 with
// Retry-After. Every request carries a deadline (timeout_ms, capped by
// -max-timeout, defaulting to -default-timeout), and a disconnected client
// cancels its synchronous job within one simulation step.
//
// SIGINT/SIGTERM drains gracefully: readiness flips to 503, admission
// stops, in-flight jobs get -grace to finish, stragglers are cancelled
// through their contexts, and the trace sink (when -trace is set) is
// flushed and fsynced before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"toporouting"
	"toporouting/internal/server"
	"toporouting/internal/session"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "toporoutingd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		queue          = flag.Int("queue", 64, "admission queue depth (full queue sheds with 429)")
		workers        = flag.Int("workers", 0, "job executor count (0 = GOMAXPROCS)")
		defaultTimeout = flag.Duration("default-timeout", 30*time.Second, "deadline for requests without timeout_ms")
		maxTimeout     = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeouts")
		maxNodes       = flag.Int("max-nodes", 50000, "per-request node cap")
		maxSteps       = flag.Int("max-steps", 10_000_000, "per-request steps×runs cap")
		jobTTL         = flag.Duration("job-ttl", 10*time.Minute, "retention of finished async jobs")
		cacheMode      = flag.String("cache", "on", "digest-keyed response cache: on or off")
		cacheBytes     = flag.Int64("cache-bytes", 64<<20, "response cache size bound in bytes")
		grace          = flag.Duration("grace", 10*time.Second, "drain grace period on SIGTERM")
		trace          = flag.String("trace", "", "stream JSONL trace events to this file")
		expvarName     = flag.String("expvar", "toporouting", "expvar name for the live telemetry snapshot")
		logFormat      = flag.String("log", "text", "request log format: text, json, or off")
		traceSlow      = flag.Int("trace-slow", 32, "retain this many slowest request traces")
		traceSample    = flag.Int("trace-sample", 64, "retain a uniform sample of this many request traces")

		maxSessions       = flag.Int("max-sessions", 256, "hosted-session cap across all tenants")
		maxTenantSessions = flag.Int("max-tenant-sessions", 8, "hosted-session cap per tenant")
		sessionRate       = flag.Float64("session-rate", 1000, "per-tenant event rate limit, events/sec (negative = unlimited)")
		sessionRing       = flag.Int("session-ring", 256, "delta generations retained per session")
		sessionTTL        = flag.Duration("session-ttl", 10*time.Minute, "evict sessions idle this long (negative = never)")
		shards            = flag.Int("shards", 1, "session registry shards (tenants map by consistent hashing)")
		replicas          = flag.Int("replicas", 0, "read replicas per hosted session (clamped to shards-1)")
		stalenessGens     = flag.Int("staleness-gens", 64, "replica read staleness budget in generations")
	)
	flag.Parse()

	effCacheBytes := *cacheBytes
	switch *cacheMode {
	case "on":
		if effCacheBytes <= 0 {
			effCacheBytes = -1 // -cache on with a non-positive size is still off
		}
	case "off":
		effCacheBytes = -1
	default:
		return fmt.Errorf("unknown -cache mode %q (want on or off)", *cacheMode)
	}

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
	default:
		return fmt.Errorf("unknown -log format %q (want text, json, or off)", *logFormat)
	}

	var (
		tel  *toporouting.Telemetry
		sink toporouting.TraceSink
	)
	if *trace != "" {
		var err error
		sink, err = toporouting.CreateJSONLTrace(*trace)
		if err != nil {
			return err
		}
		tel = toporouting.NewTracedTelemetry(sink)
	} else {
		tel = toporouting.NewTelemetry()
	}
	toporouting.PublishExpvar(*expvarName, tel)
	tracer := toporouting.NewTracer(tel, toporouting.NewTraceRing(*traceSlow, *traceSample))

	srv := server.New(server.Config{
		QueueDepth:     *queue,
		Workers:        *workers,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxNodes:       *maxNodes,
		MaxSteps:       *maxSteps,
		JobTTL:         *jobTTL,
		CacheBytes:     effCacheBytes,
		Telemetry:      tel,
		Tracer:         tracer,
		Logger:         logger,
		Sink:           sink,
		Sessions: session.Config{
			MaxSessions:          *maxSessions,
			MaxSessionsPerTenant: *maxTenantSessions,
			EventRate:            *sessionRate,
			DeltaRing:            *sessionRing,
			IdleTTL:              *sessionTTL,
		},
		Shards:               *shards,
		Replicas:             *replicas,
		ReplicaStalenessGens: *stalenessGens,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("toporoutingd listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}

	log.Printf("toporoutingd draining (grace %s, %d in flight)", *grace, srv.InFlight())
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain jobs first — synchronous handlers hold their connections until
	// their jobs finish, so the HTTP shutdown below completes once the job
	// drain does.
	drainErr := srv.Shutdown(graceCtx)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		log.Printf("toporoutingd: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("toporoutingd: drain forced after grace period: %v", drainErr)
	} else {
		log.Printf("toporoutingd: drained cleanly")
	}
	return nil
}
