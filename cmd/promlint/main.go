// Command promlint validates a Prometheus text exposition (format 0.0.4)
// read from stdin or -in. It is the CI gate behind toporoutingd's
// GET /metrics: the serve-smoke job scrapes the endpoint and pipes the
// body through promlint, so a malformed exposition — bad metric or label
// names, broken escaping, non-monotonic histogram buckets, a missing +Inf
// bucket, or a +Inf count disagreeing with _count — fails the build
// instead of failing the first real scraper pointed at the daemon.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promlint
//	promlint -in metrics.txt [-q]
//
// On success it prints the sample count; -q suppresses that. On failure it
// prints the first format error and exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"toporouting/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in    = flag.String("in", "", "read the exposition from this file instead of stdin")
		quiet = flag.Bool("q", false, "suppress the success summary")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	samples, err := telemetry.ParsePrometheus(r)
	if err != nil {
		return err
	}
	if !*quiet {
		names := make(map[string]struct{}, len(samples))
		for _, s := range samples {
			names[s.Name] = struct{}{}
		}
		fmt.Printf("ok: %d samples across %d metrics\n", len(samples), len(names))
	}
	return nil
}
