package main

import (
	"fmt"
	"strconv"
	"strings"
)

// sloClause is one assertion against the end-of-run report: a latency bound
// ("p99<50ms", "mean<10ms") or a rate bound ("err<1%", "shed<5%").
type sloClause struct {
	metric string  // p50 p90 p95 p99 mean max err shed
	bound  float64 // ms for latency metrics, percent for rate metrics
}

// parseSLO parses a comma-separated SLO spec like "p99<50ms,err<1%".
// Latency clauses (p50/p90/p95/p99/mean/max) take a millisecond bound;
// rate clauses (err/shed) take a percentage of all requests. err counts
// 5xx plus transport errors — the failures a client actually experiences;
// 429s are intentional shed and get their own clause.
func parseSLO(spec string) ([]sloClause, error) {
	var clauses []sloClause
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		metric, rest, ok := strings.Cut(part, "<")
		if !ok {
			return nil, fmt.Errorf("slo clause %q: want metric<bound", part)
		}
		metric = strings.TrimSpace(metric)
		rest = strings.TrimSpace(rest)
		var unit string
		switch metric {
		case "p50", "p90", "p95", "p99", "mean", "max":
			unit = "ms"
		case "err", "shed":
			unit = "%"
		default:
			return nil, fmt.Errorf("slo clause %q: unknown metric %q (want p50, p90, p95, p99, mean, max, err, or shed)", part, metric)
		}
		if !strings.HasSuffix(rest, unit) {
			return nil, fmt.Errorf("slo clause %q: %s bound must end in %q", part, metric, unit)
		}
		bound, err := strconv.ParseFloat(strings.TrimSuffix(rest, unit), 64)
		if err != nil || bound < 0 {
			return nil, fmt.Errorf("slo clause %q: bad bound %q", part, rest)
		}
		clauses = append(clauses, sloClause{metric: metric, bound: bound})
	}
	if len(clauses) == 0 {
		return nil, fmt.Errorf("empty slo spec %q", spec)
	}
	return clauses, nil
}

// checkSLO evaluates every clause against the report and returns one error
// per violated clause (nil when all hold).
func checkSLO(clauses []sloClause, rep report) []error {
	var violations []error
	for _, c := range clauses {
		var got float64
		switch c.metric {
		case "p50":
			got = rep.LatencyMS.P50
		case "p90":
			got = rep.LatencyMS.P90
		case "p95":
			got = rep.LatencyMS.P95
		case "p99":
			got = rep.LatencyMS.P99
		case "mean":
			got = rep.LatencyMS.Mean
		case "max":
			got = rep.LatencyMS.Max
		case "err":
			if rep.Requests > 0 {
				got = 100 * float64(rep.ServerErr+rep.Transport) / float64(rep.Requests)
			}
		case "shed":
			if rep.Requests > 0 {
				got = 100 * float64(rep.Shed) / float64(rep.Requests)
			}
		}
		if got >= c.bound {
			unit := "ms"
			if c.metric == "err" || c.metric == "shed" {
				unit = "%"
			}
			violations = append(violations,
				fmt.Errorf("slo violated: %s = %.2f%s, want < %g%s", c.metric, got, unit, c.bound, unit))
		}
	}
	return violations
}
