package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// clusterReport is the multi-tenant section of the report. The invariant it
// exists to check: every event the server acked (status 200, no in-stream
// error, echoed generation) is still present at the end of the run —
// LostEvents counts acked generations the final snapshot does not reach,
// and must be zero even when a shard was killed mid-stream. Replica/primary
// read counts come from the X-Session-Source header.
type clusterReport struct {
	Tenants      int   `json:"tenants"`
	Sessions     int   `json:"sessions"`
	AckedEvents  int64 `json:"acked_events"`
	FailedEvents int64 `json:"failed_events"`
	LostEvents   int64 `json:"lost_events"`
	ReplicaReads int64 `json:"replica_reads"`
	PrimaryReads int64 `json:"primary_reads"`
}

// tenantState is one tenant's session under the multi-tenant schedule.
// maxAcked is the highest generation the server has acknowledged for an
// event this run — the floor the session's final generation must reach.
type tenantState struct {
	tenant string
	base   string // /v1/sessions/{id} URL
	etag   string
	acked  int64 // events acked (200 + clean echo)
	maxGen int64 // highest acked generation
}

// runMultiTenant drives one hosted session per tenant with a Zipf-skewed
// open-loop schedule: hot tenants get most of the events, every 16th tick
// is a conditional read, and at the end each session's final generation is
// checked against the highest acked one. Requests that fail mid-run (a
// shard being killed and failed over under the load) count as failed, not
// lost — loss means an *acked* event missing afterwards.
func runMultiTenant(client *http.Client, opts sessionOpts, tenants int, zipfS float64) ([]sample, *clusterReport, float64, error) {
	if tenants < 1 {
		return nil, nil, 0, fmt.Errorf("-tenants must be >= 1, got %d", tenants)
	}
	if zipfS <= 1 {
		return nil, nil, 0, fmt.Errorf("-zipf exponent must be > 1, got %v", zipfS)
	}
	cr := &clusterReport{Tenants: tenants}
	states := make([]*tenantState, tenants)
	for i := range states {
		o := opts
		o.tenant = fmt.Sprintf("t-%d", i)
		id, etag, err := createSession(client, o)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("tenant %s: %w", o.tenant, err)
		}
		states[i] = &tenantState{tenant: o.tenant, base: opts.addr + "/v1/sessions/" + id, etag: etag}
		cr.Sessions++
	}

	var (
		mu      sync.Mutex // guards samples, cr, and every tenantState
		samples []sample
		wg      sync.WaitGroup
	)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	zipf := rand.NewZipf(rand.New(rand.NewSource(1)), zipfS, 1, uint64(tenants-1))
	ticker := time.NewTicker(time.Duration(float64(time.Second) / opts.rps))
	defer ticker.Stop()
	deadline := time.After(opts.duration)
	start := time.Now()
	tick := 0

fire:
	for {
		select {
		case <-deadline:
			break fire
		case <-ticker.C:
			tick++
			st := states[int(zipf.Uint64())] // drawn on the schedule goroutine: Zipf is not concurrency-safe
			if tick%getEvery == 0 {
				wg.Add(1)
				go func() {
					defer wg.Done()
					mu.Lock()
					since := st.etag
					mu.Unlock()
					s, newTag, _, _, source := conditionalGet(client, st.base, st.tenant, since)
					mu.Lock()
					samples = append(samples, s)
					if newTag != "" {
						st.etag = newTag
					}
					switch source {
					case "replica":
						cr.ReplicaReads++
					case "primary":
						cr.PrimaryReads++
					}
					mu.Unlock()
				}()
				continue
			}
			line, err := json.Marshal(event{
				Op: "move", Node: rng.Intn(opts.n), X: rng.Float64(), Y: rng.Float64(),
			})
			if err != nil {
				return nil, nil, 0, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, gen, rejected := postEvent(client, st.base+"/events", st.tenant, line)
				mu.Lock()
				samples = append(samples, s)
				if s.status == http.StatusOK && !rejected && gen > 0 {
					st.acked++
					cr.AckedEvents++
					if gen > st.maxGen {
						st.maxGen = gen
					}
				} else {
					cr.FailedEvents++
				}
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	// Settle, then audit: an unconditional GET per session must come back at
	// or past the highest acked generation. A session that fails over lands
	// on a new shard rebuilt from its replica log; acked events surviving
	// that move is exactly what LostEvents == 0 certifies.
	for _, st := range states {
		gen := finalGen(client, st)
		if gen < st.maxGen {
			cr.LostEvents += st.maxGen - gen
		}
		// Best-effort cleanup; a 404 here just means the session was already
		// gone (and was counted as lost above if events were acked).
		_ = deleteSession(client, st.base, st.tenant)
	}
	return samples, cr, elapsed, nil
}

// finalGen reads the session's authoritative generation with an
// unconditional GET, retrying briefly so a failover still settling when the
// schedule ends is not misread as loss.
func finalGen(client *http.Client, st *tenantState) int64 {
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(200 * time.Millisecond)
		}
		s, _, _, gen, _ := conditionalGet(client, st.base, st.tenant, "")
		if s.status == http.StatusOK && gen >= st.maxGen {
			return gen
		}
		if s.status == http.StatusOK && attempt == 4 {
			return gen
		}
	}
	return 0
}
