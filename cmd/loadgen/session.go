package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// sessionReport is the session-mode section of the report: how the hosted
// topology's read side was served. The delta-hit ratio is the fraction of
// conditional GETs answered without a full snapshot (304 or compact delta)
// — the number the generation-numbered ring exists to keep high.
type sessionReport struct {
	ID            string  `json:"id"`
	Events        int     `json:"events"`
	EventErrors   int     `json:"event_errors"` // semantic rejections echoed in-stream
	FinalGen      int64   `json:"final_gen"`
	Gets          int     `json:"gets"`
	NotModified   int     `json:"not_modified"`
	DeltaServed   int     `json:"delta_served"`
	FullServed    int     `json:"full_served"`
	DeltaHitRatio float64 `json:"delta_hit_ratio"`
}

type sessionOpts struct {
	addr      string
	rps       float64
	duration  time.Duration
	n         int
	dist      string
	mode      string
	timeoutMS int
	tenant    string // X-Tenant-ID; empty = server default
}

// getEvery: one tick in 16 is a conditional read instead of an event, so a
// steady event stream leaves each read ~15 generations behind — squarely in
// delta territory for the default ring of 256.
const getEvery = 16

// runSession drives the hosted-session churn path: create one session,
// stream single-event NDJSON POSTs at the target rate (each echo read to
// completion, so the latency sample covers the full apply round-trip),
// interleave conditional GETs carrying the last seen ETag, and delete the
// session on the way out. Events are moves only: the node id space stays
// stable, so concurrently fired events never race each other into
// rejections.
func runSession(client *http.Client, opts sessionOpts) ([]sample, *sessionReport, float64, error) {
	id, etag, err := createSession(client, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	base := opts.addr + "/v1/sessions/" + id
	sr := &sessionReport{ID: id}

	var (
		mu      sync.Mutex // guards samples, sr, etag
		samples []sample
		wg      sync.WaitGroup
	)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	interval := time.Duration(float64(time.Second) / opts.rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(opts.duration)
	start := time.Now()
	tick := 0

fire:
	for {
		select {
		case <-deadline:
			break fire
		case <-ticker.C:
			tick++
			if tick%getEvery == 0 {
				wg.Add(1)
				go func() {
					defer wg.Done()
					readOnce(client, base, opts.tenant, &mu, &samples, sr, &etag)
				}()
				continue
			}
			line, err := json.Marshal(event{
				Op: "move", Node: rng.Intn(opts.n), X: rng.Float64(), Y: rng.Float64(),
			})
			if err != nil {
				return nil, nil, 0, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, gen, rejected := postEvent(client, base+"/events", opts.tenant, line)
				mu.Lock()
				samples = append(samples, s)
				if s.status == http.StatusOK {
					sr.Events++
					if rejected {
						sr.EventErrors++
					}
				}
				if gen > sr.FinalGen {
					sr.FinalGen = gen
				}
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	// Quiescent read pair: the first GET syncs to the live generation
	// (delta or full), the second must come back 304 — so a healthy run
	// always shows not_modified > 0, which the CI smoke asserts.
	readOnce(client, base, opts.tenant, &mu, &samples, sr, &etag)
	readOnce(client, base, opts.tenant, &mu, &samples, sr, &etag)

	if hit := sr.NotModified + sr.DeltaServed; sr.Gets > 0 {
		sr.DeltaHitRatio = float64(hit) / float64(sr.Gets)
	}
	if err := deleteSession(client, base, opts.tenant); err != nil {
		return nil, nil, 0, err
	}
	return samples, sr, elapsed, nil
}

// readOnce issues one conditional GET with the last seen ETag and folds the
// outcome into the shared report under mu.
func readOnce(client *http.Client, base, tenant string, mu *sync.Mutex, samples *[]sample, sr *sessionReport, etag *string) {
	mu.Lock()
	since := *etag
	mu.Unlock()
	s, newTag, outcome, gen, _ := conditionalGet(client, base, tenant, since)
	mu.Lock()
	defer mu.Unlock()
	*samples = append(*samples, s)
	if newTag != "" {
		*etag = newTag
	}
	sr.Gets++
	switch outcome {
	case "not_modified":
		sr.NotModified++
	case "delta":
		sr.DeltaServed++
	case "full":
		sr.FullServed++
	}
	if gen > sr.FinalGen {
		sr.FinalGen = gen
	}
}

// event mirrors the server's NDJSON wire shape (internal/session.Event);
// loadgen keeps its own copy so the binary stays a pure HTTP client.
type event struct {
	Op   string  `json:"op"`
	Node int     `json:"node"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

func createSession(client *http.Client, opts sessionOpts) (id, etag string, err error) {
	body, err := json.Marshal(map[string]any{
		"dist": opts.dist, "n": opts.n, "mode": opts.mode, "timeout_ms": opts.timeoutMS,
	})
	if err != nil {
		return "", "", err
	}
	req, err := http.NewRequest(http.MethodPost, opts.addr+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return "", "", err
	}
	req.Header.Set("Content-Type", "application/json")
	setTenant(req, opts.tenant)
	resp, err := client.Do(req)
	if err != nil {
		return "", "", fmt.Errorf("create session: %w", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return "", "", fmt.Errorf("create session: status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var created struct {
		ID  string `json:"id"`
		Gen int64  `json:"gen"`
	}
	if err := json.Unmarshal(raw, &created); err != nil {
		return "", "", fmt.Errorf("create session: decode: %w", err)
	}
	return created.ID, fmt.Sprint(created.Gen), nil
}

// setTenant stamps the X-Tenant-ID header when a tenant is set; without it
// the server scopes the request to its default tenant.
func setTenant(req *http.Request, tenant string) {
	if tenant != "" {
		req.Header.Set("X-Tenant-ID", tenant)
	}
}

// postEvent streams one event and reads its echoed ApplyResult, so the
// latency sample is the full apply round-trip, not just the POST.
func postEvent(client *http.Client, url, tenant string, line []byte) (s sample, gen int64, rejected bool) {
	t0 := time.Now()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(append(line, '\n')))
	if err != nil {
		return sample{status: 0, latencyMS: msSince(t0)}, 0, false
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	setTenant(req, tenant)
	resp, err := client.Do(req)
	if err != nil {
		return sample{status: 0, latencyMS: msSince(t0)}, 0, false
	}
	defer resp.Body.Close()
	var echo struct {
		Gen int64  `json:"gen"`
		Err string `json:"error"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&echo); err != nil {
			return sample{status: 0, latencyMS: msSince(t0)}, 0, false
		}
	}
	io.Copy(io.Discard, resp.Body)
	return sample{status: resp.StatusCode, latencyMS: msSince(t0)}, echo.Gen, echo.Err != ""
}

// conditionalGet issues GET with If-None-Match and classifies the answer:
// 304, a delta body (has "records"), or a full snapshot (has "points").
// source echoes the X-Session-Source header ("primary" / "replica" in
// sharded deployments, empty otherwise).
func conditionalGet(client *http.Client, url, tenant, since string) (s sample, etag, outcome string, gen int64, source string) {
	t0 := time.Now()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return sample{status: 0, latencyMS: msSince(t0)}, "", "", 0, ""
	}
	req.Header.Set("If-None-Match", since)
	setTenant(req, tenant)
	resp, err := client.Do(req)
	if err != nil {
		return sample{status: 0, latencyMS: msSince(t0)}, "", "", 0, ""
	}
	defer resp.Body.Close()
	s = sample{status: resp.StatusCode, latencyMS: 0} // latency set below, after body drain
	source = resp.Header.Get("X-Session-Source")
	switch resp.StatusCode {
	case http.StatusNotModified:
		outcome = "not_modified"
	case http.StatusOK:
		var body struct {
			Gen     int64           `json:"gen"`
			Records json.RawMessage `json:"records"`
			Points  json.RawMessage `json:"points"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return sample{status: 0, latencyMS: msSince(t0)}, "", "", 0, source
		}
		gen = body.Gen
		if body.Points != nil {
			outcome = "full"
		} else {
			outcome = "delta"
		}
		etag = resp.Header.Get("ETag")
	}
	io.Copy(io.Discard, resp.Body)
	s.latencyMS = msSince(t0)
	return s, etag, outcome, gen, source
}

func deleteSession(client *http.Client, url, tenant string) error {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	setTenant(req, tenant)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("delete session: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("delete session: status %d", resp.StatusCode)
	}
	return nil
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}
