// Command loadgen drives a running toporoutingd with an open-loop request
// stream at a target rate and reports the latency distribution and status
// breakdown.
//
// Usage:
//
//	loadgen [-addr http://localhost:8080] [-rps 50] [-duration 10s]
//	        [-endpoint topology|simulate|interference|session] [-n 60]
//	        [-dist uniform] [-steps 50] [-mode centralized] [-timeout-ms 5000]
//	        [-keyspace 0] [-zipf 1.2] [-tenants 0]
//	        [-strict] [-json] [-slo "p99<50ms,err<1%"]
//
// Open-loop means the schedule never waits for responses: a request fires
// every 1/rps regardless of how the previous ones are doing, so server
// slowdowns surface as latency and shed load (429), not as a silently
// reduced offered rate. 429 responses count as "shed", not as errors — they
// are the server's backpressure working as designed.
//
// -endpoint session exercises the hosted-session subsystem instead of the
// stateless endpoints: it creates one session (-n nodes, -mode build mode),
// streams move events at -rps, interleaves a conditional GET (If-None-Match
// with the last seen ETag) every 16th tick, and deletes the session at the
// end. The report gains a "session" section with the event count, the
// 304/delta/full breakdown of the reads, and the delta-hit ratio — the
// fraction of reads the generation-numbered delta ring answered without a
// full snapshot. Latency percentiles cover both event applies and reads.
//
// -tenants K (with -endpoint session) fans the schedule out across K
// tenants, one hosted session each, with per-tick tenant draws from a Zipf
// distribution (exponent -zipf) so hot tenants dominate the way real
// multi-tenant traffic does. Every acked event's echoed generation is
// recorded, and at the end each session's final generation is audited
// against the highest acked one: the report's "cluster" section carries
// acked/failed/lost event counts and the replica/primary read split (from
// X-Session-Source). lost_events must stay zero across a forced shard kill
// — requests that fail during the failover window count as failed, never
// lost — which is what the cluster CI smoke asserts.
//
// -keyspace N switches the stateless endpoints (topology, interference)
// into repeated-pointset mode: each request draws one of N distinct point
// seeds from a Zipf distribution with exponent -zipf (> 1; heavier skew =
// hotter keys), so the same request bodies recur the way production
// traffic does and the server's digest-keyed response cache has something
// to hit. Per key, the last seen ETag is replayed as If-None-Match, so a
// warm key is answered 304 without a body. The report gains a "cache"
// section — hit/miss/coalesced/304 counts from the X-Cache and status
// answers, and the hit ratio (everything the server did not rebuild).
//
// -strict exits non-zero when any 5xx was observed or no request succeeded,
// which makes loadgen usable as a CI smoke gate. -slo goes further: it
// asserts service-level objectives against the final report — latency
// percentiles in milliseconds (p50/p90/p95/p99/mean/max) and rates as a
// percentage of all requests (err = 5xx + transport failures, shed = 429)
// — and exits non-zero listing every violated clause.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"toporouting/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// report is the end-of-run summary (also the -json shape).
type report struct {
	Requests    int            `json:"requests"`
	OK          int            `json:"ok"`         // 2xx (and 304 in session mode)
	Shed        int            `json:"shed"`       // 429
	ClientErr   int            `json:"client_err"` // other 4xx
	ServerErr   int            `json:"server_err"` // 5xx
	Transport   int            `json:"transport_err"`
	Statuses    map[string]int `json:"statuses"`
	LatencyMS   latencySummary `json:"latency_ms"`
	OfferedRPS  float64        `json:"offered_rps"`
	AchievedRPS float64        `json:"achieved_rps"` // 2xx per second
	Session     *sessionReport `json:"session,omitempty"`
	Cache       *cacheReport   `json:"cache,omitempty"`
	Cluster     *clusterReport `json:"cluster,omitempty"`
}

// cacheReport is the keyspace-mode accounting of the server's response
// cache, assembled from X-Cache headers and 304 answers.
type cacheReport struct {
	Hits        int `json:"hits"`
	Misses      int `json:"misses"`
	Coalesced   int `json:"coalesced"`
	NotModified int `json:"not_modified"`
	// HitRatio is the fraction of cache-answered requests the server did
	// not have to rebuild: (hits + coalesced + 304) / all of the above.
	HitRatio float64 `json:"hit_ratio"`
}

// sample is one request's outcome; status 0 means a transport error.
type sample struct {
	status    int
	latencyMS float64
}

// summarize folds raw samples into the report. 304 counts as success: in
// session mode it is the delta protocol's cheapest (and desired) answer.
func summarize(samples []sample, offeredRPS, elapsedS float64) report {
	rep := report{Statuses: make(map[string]int), OfferedRPS: offeredRPS}
	var lats []float64
	for _, s := range samples {
		rep.Requests++
		switch {
		case s.status == 0:
			rep.Transport++
		case s.status < 300 || s.status == http.StatusNotModified:
			rep.OK++
			lats = append(lats, s.latencyMS)
		case s.status == http.StatusTooManyRequests:
			rep.Shed++
		case s.status < 500:
			rep.ClientErr++
		default:
			rep.ServerErr++
		}
		if s.status != 0 {
			rep.Statuses[fmt.Sprint(s.status)]++
		}
	}
	rep.AchievedRPS = float64(rep.OK) / elapsedS
	sum := stats.Summarize(lats)
	rep.LatencyMS = latencySummary{
		Mean: sum.Mean, P50: sum.P50, P90: sum.P90, P95: sum.P95, P99: sum.P99, Max: sum.Max,
	}
	return rep
}

type latencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func run() error {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "toporoutingd base URL")
		rps       = flag.Float64("rps", 50, "target request rate (open loop)")
		duration  = flag.Duration("duration", 10*time.Second, "run length")
		endpoint  = flag.String("endpoint", "topology", "topology | simulate | interference | session")
		n         = flag.Int("n", 60, "nodes per request")
		dist      = flag.String("dist", "uniform", "point distribution")
		steps     = flag.Int("steps", 50, "simulation steps (simulate endpoint)")
		mode      = flag.String("mode", "centralized", "topology build mode")
		timeoutMS = flag.Int("timeout-ms", 5000, "per-request timeout_ms")
		keyspace  = flag.Int("keyspace", 0, "repeated-pointset mode: draw seeds from this many distinct keys (0 = off)")
		zipfS     = flag.Float64("zipf", 1.2, "Zipf exponent for keyspace/tenant draws (> 1; larger = hotter keys)")
		tenants   = flag.Int("tenants", 0, "multi-tenant session mode: one session per tenant, Zipf-skewed traffic (0 = off)")
		strict    = flag.Bool("strict", false, "exit non-zero on any 5xx or zero successes")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		slo       = flag.String("slo", "", `assert SLOs and exit non-zero on violation, e.g. "p99<50ms,err<1%"`)
	)
	flag.Parse()
	if *rps <= 0 {
		return fmt.Errorf("rps must be positive, got %v", *rps)
	}
	var sloClauses []sloClause
	if *slo != "" {
		var err error
		if sloClauses, err = parseSLO(*slo); err != nil {
			return err
		}
	}

	client := &http.Client{Timeout: time.Duration(*timeoutMS)*time.Millisecond + 5*time.Second}

	var rep report
	if *tenants > 0 {
		if *endpoint != "session" {
			return fmt.Errorf("-tenants needs -endpoint session, got %q", *endpoint)
		}
		samples, cr, elapsed, err := runMultiTenant(client, sessionOpts{
			addr: *addr, rps: *rps, duration: *duration,
			n: *n, dist: *dist, mode: *mode, timeoutMS: *timeoutMS,
		}, *tenants, *zipfS)
		if err != nil {
			return err
		}
		rep = summarize(samples, *rps, elapsed)
		rep.Cluster = cr
	} else if *endpoint == "session" {
		samples, sess, elapsed, err := runSession(client, sessionOpts{
			addr: *addr, rps: *rps, duration: *duration,
			n: *n, dist: *dist, mode: *mode, timeoutMS: *timeoutMS,
		})
		if err != nil {
			return err
		}
		rep = summarize(samples, *rps, elapsed)
		rep.Session = sess
	} else if *keyspace > 0 {
		samples, cr, elapsed, err := runKeyspace(client, keyspaceOpts{
			addr: *addr, endpoint: *endpoint, dist: *dist, mode: *mode,
			rps: *rps, duration: *duration, n: *n, keys: *keyspace,
			timeoutMS: *timeoutMS, zipfS: *zipfS,
		})
		if err != nil {
			return err
		}
		rep = summarize(samples, *rps, elapsed)
		rep.Cache = cr
	} else {
		path, body, err := buildRequest(*endpoint, *n, *dist, *steps, *mode, *timeoutMS, 0)
		if err != nil {
			return err
		}
		url := *addr + path

		var (
			mu      sync.Mutex
			samples []sample
			wg      sync.WaitGroup
		)
		interval := time.Duration(float64(time.Second) / *rps)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		deadline := time.After(*duration)
		start := time.Now()

	fire:
		for {
			select {
			case <-deadline:
				break fire
			case <-ticker.C:
				wg.Add(1)
				go func() {
					defer wg.Done()
					t0 := time.Now()
					resp, err := client.Post(url, "application/json", bytes.NewReader(body))
					lat := float64(time.Since(t0)) / float64(time.Millisecond)
					st := 0
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						st = resp.StatusCode
					}
					mu.Lock()
					samples = append(samples, sample{status: st, latencyMS: lat})
					mu.Unlock()
				}()
			}
		}
		wg.Wait()
		rep = summarize(samples, *rps, time.Since(start).Seconds())
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(rep)
	}

	if *strict {
		if rep.ServerErr > 0 {
			return fmt.Errorf("strict: %d server errors (5xx)", rep.ServerErr)
		}
		if rep.OK == 0 {
			return fmt.Errorf("strict: no successful responses out of %d requests", rep.Requests)
		}
	}
	if violations := checkSLO(sloClauses, rep); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "loadgen:", v)
		}
		return fmt.Errorf("%d of %d slo clauses violated", len(violations), len(sloClauses))
	}
	return nil
}

// buildRequest assembles the request body once; every fired request reuses
// it (same points seed → the server does identical work per request).
func buildRequest(endpoint string, n int, dist string, steps int, mode string, timeoutMS int, seed int64) (string, []byte, error) {
	var (
		path string
		req  map[string]any
	)
	switch endpoint {
	case "topology":
		path = "/v1/topology"
		req = map[string]any{"mode": mode, "dist": dist, "n": n, "seed": seed, "timeout_ms": timeoutMS}
	case "simulate":
		path = "/v1/simulate"
		req = map[string]any{
			"dist": dist, "n": n, "seed": seed, "steps": steps,
			"router":     map[string]any{"buffer": 100},
			"timeout_ms": timeoutMS,
		}
	case "interference":
		path = "/v1/interference"
		req = map[string]any{"dist": dist, "n": n, "seed": seed, "timeout_ms": timeoutMS}
	default:
		return "", nil, fmt.Errorf("unknown endpoint %q (want topology, simulate, interference, or session)", endpoint)
	}
	body, err := json.Marshal(req)
	return path, body, err
}

type keyspaceOpts struct {
	addr, endpoint, dist, mode string
	rps                        float64
	duration                   time.Duration
	n, keys, timeoutMS         int
	zipfS                      float64
}

// runKeyspace fires the open-loop schedule over a Zipf-skewed key set so
// identical requests recur: per tick one key is drawn, its pre-marshalled
// body is posted, and the key's last ETag rides along as If-None-Match.
// Cache outcomes are read back from X-Cache and the 304 status.
func runKeyspace(client *http.Client, o keyspaceOpts) ([]sample, *cacheReport, float64, error) {
	if o.endpoint != "topology" && o.endpoint != "interference" {
		return nil, nil, 0, fmt.Errorf("-keyspace needs a cached endpoint (topology or interference), got %q", o.endpoint)
	}
	if o.zipfS <= 1 {
		return nil, nil, 0, fmt.Errorf("-zipf exponent must be > 1, got %v", o.zipfS)
	}
	bodies := make([][]byte, o.keys)
	var path string
	for k := range bodies {
		p, body, err := buildRequest(o.endpoint, o.n, o.dist, 0, o.mode, o.timeoutMS, int64(k))
		if err != nil {
			return nil, nil, 0, err
		}
		path, bodies[k] = p, body
	}
	url := o.addr + path
	zipf := rand.NewZipf(rand.New(rand.NewSource(1)), o.zipfS, 1, uint64(o.keys-1))

	var (
		mu      sync.Mutex
		samples []sample
		etags   = make([]string, o.keys)
		cr      cacheReport
		wg      sync.WaitGroup
	)
	ticker := time.NewTicker(time.Duration(float64(time.Second) / o.rps))
	defer ticker.Stop()
	deadline := time.After(o.duration)
	start := time.Now()

fire:
	for {
		select {
		case <-deadline:
			break fire
		case <-ticker.C:
			k := int(zipf.Uint64()) // drawn on the schedule goroutine: Zipf is not concurrency-safe
			wg.Add(1)
			go func() {
				defer wg.Done()
				req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(bodies[k]))
				if err != nil {
					return
				}
				req.Header.Set("Content-Type", "application/json")
				mu.Lock()
				if e := etags[k]; e != "" {
					req.Header.Set("If-None-Match", e)
				}
				mu.Unlock()
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := float64(time.Since(t0)) / float64(time.Millisecond)
				st := 0
				var xc, etag string
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					st = resp.StatusCode
					xc = resp.Header.Get("X-Cache")
					etag = resp.Header.Get("ETag")
				}
				mu.Lock()
				samples = append(samples, sample{status: st, latencyMS: lat})
				if etag != "" {
					etags[k] = etag
				}
				switch {
				case st == http.StatusNotModified:
					cr.NotModified++
				case xc == "hit":
					cr.Hits++
				case xc == "coalesced":
					cr.Coalesced++
				case xc == "miss":
					cr.Misses++
				}
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if total := cr.Hits + cr.Misses + cr.Coalesced + cr.NotModified; total > 0 {
		cr.HitRatio = float64(cr.Hits+cr.Coalesced+cr.NotModified) / float64(total)
	}
	return samples, &cr, time.Since(start).Seconds(), nil
}

func printReport(rep report) {
	fmt.Printf("requests   %d (offered %.1f rps)\n", rep.Requests, rep.OfferedRPS)
	fmt.Printf("ok         %d (achieved %.1f rps)\n", rep.OK, rep.AchievedRPS)
	fmt.Printf("shed(429)  %d\n", rep.Shed)
	fmt.Printf("4xx        %d\n", rep.ClientErr)
	fmt.Printf("5xx        %d\n", rep.ServerErr)
	fmt.Printf("transport  %d\n", rep.Transport)
	keys := make([]string, 0, len(rep.Statuses))
	for k := range rep.Statuses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  status %s: %d\n", k, rep.Statuses[k])
	}
	fmt.Printf("latency ms mean=%.1f p50=%.1f p90=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		rep.LatencyMS.Mean, rep.LatencyMS.P50, rep.LatencyMS.P90,
		rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Max)
	if c := rep.Cache; c != nil {
		fmt.Printf("cache      hit=%d miss=%d coalesced=%d 304=%d hit-ratio %.3f\n",
			c.Hits, c.Misses, c.Coalesced, c.NotModified, c.HitRatio)
	}
	if s := rep.Session; s != nil {
		fmt.Printf("session    %s gen=%d events=%d rejected=%d\n",
			s.ID, s.FinalGen, s.Events, s.EventErrors)
		fmt.Printf("reads      %d (304=%d delta=%d full=%d) delta-hit %.3f\n",
			s.Gets, s.NotModified, s.DeltaServed, s.FullServed, s.DeltaHitRatio)
	}
	if c := rep.Cluster; c != nil {
		fmt.Printf("cluster    tenants=%d sessions=%d acked=%d failed=%d lost=%d\n",
			c.Tenants, c.Sessions, c.AckedEvents, c.FailedEvents, c.LostEvents)
		fmt.Printf("sources    replica=%d primary=%d\n", c.ReplicaReads, c.PrimaryReads)
	}
}
