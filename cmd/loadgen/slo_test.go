package main

import "testing"

func TestParseSLO(t *testing.T) {
	clauses, err := parseSLO("p99<50ms, err<1%,shed<5%")
	if err != nil {
		t.Fatal(err)
	}
	want := []sloClause{{"p99", 50}, {"err", 1}, {"shed", 5}}
	if len(clauses) != len(want) {
		t.Fatalf("got %d clauses, want %d", len(clauses), len(want))
	}
	for i, c := range clauses {
		if c != want[i] {
			t.Fatalf("clause %d = %+v, want %+v", i, c, want[i])
		}
	}

	for _, bad := range []string{
		"", "p99", "p99<50", "p99<50%", "err<1ms", "p42<50ms", "p99<-3ms", "p99<xms",
	} {
		if _, err := parseSLO(bad); err == nil {
			t.Errorf("parseSLO(%q) accepted", bad)
		}
	}
}

func TestCheckSLO(t *testing.T) {
	rep := report{
		Requests:  100,
		OK:        90,
		Shed:      4,
		ServerErr: 2,
		Transport: 1,
		LatencyMS: latencySummary{Mean: 8, P50: 5, P90: 20, P95: 30, P99: 45, Max: 80},
	}
	pass, err := parseSLO("p99<50ms,mean<10ms,shed<5%")
	if err != nil {
		t.Fatal(err)
	}
	if v := checkSLO(pass, rep); len(v) != 0 {
		t.Fatalf("expected pass, got violations: %v", v)
	}
	// err = (2 + 1) / 100 = 3% ≥ 1%; max = 80 ≥ 50.
	fail, err := parseSLO("err<1%,max<50ms,p50<100ms")
	if err != nil {
		t.Fatal(err)
	}
	if v := checkSLO(fail, rep); len(v) != 2 {
		t.Fatalf("expected 2 violations, got %d: %v", len(v), v)
	}
	// Bounds are strict: meeting the bound exactly violates it.
	exact, _ := parseSLO("p99<45ms")
	if v := checkSLO(exact, rep); len(v) != 1 {
		t.Fatalf("p99=45 should violate p99<45ms")
	}
	// No clauses → no violations (the -slo flag unset path).
	if v := checkSLO(nil, rep); v != nil {
		t.Fatalf("nil clauses produced violations: %v", v)
	}
}
