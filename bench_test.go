package toporouting

// The benchmark harness regenerates every experiment of the reproduction
// (E1–E12 for the paper's claims, E13–E17 for extensions; the paper is a
// theory paper, so its "tables and figures" are its theorems — see
// DESIGN.md for the experiment index). Each BenchmarkE*
// executes the corresponding experiment at bench scale and reports custom
// metrics extracted from the run alongside time/allocations. Microbenches
// for the core primitives (topology build, θ-paths, interference sets,
// balancing steps) follow.
//
// Run:  go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"toporouting/internal/experiments"
	"toporouting/internal/georouting"
	"toporouting/internal/interference"
	"toporouting/internal/optimal"
	"toporouting/internal/pointset"
	"toporouting/internal/proximity"
	"toporouting/internal/routing"
	"toporouting/internal/sim"
	"toporouting/internal/telemetry"
	"toporouting/internal/topology"
	"toporouting/internal/unitdisk"
)

// benchScale is the sweep used by the experiment benchmarks: large enough
// to show the asymptotic shapes, small enough for a bench loop.
func benchScale() experiments.Scale {
	return experiments.Scale{Sizes: []int{100, 200, 400}, Seeds: 2, Steps: 600}
}

func benchExperiment(b *testing.B, run func(experiments.Scale) *experiments.Table) {
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		t := run(benchScale())
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkE1DegreeConnectivity(b *testing.B) {
	benchExperiment(b, experiments.E1DegreeConnectivity)
}

func BenchmarkE2EnergyStretch(b *testing.B) {
	benchExperiment(b, experiments.E2EnergyStretch)
}

func BenchmarkE3DistanceStretch(b *testing.B) {
	benchExperiment(b, experiments.E3DistanceStretch)
}

func BenchmarkE4Interference(b *testing.B) {
	benchExperiment(b, experiments.E4Interference)
}

func BenchmarkE5ThetaPathOverlap(b *testing.B) {
	benchExperiment(b, experiments.E5ThetaPathOverlap)
}

func BenchmarkE6ScheduleEmulation(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{100, 200}
		return experiments.E6ScheduleEmulation(sc)
	})
}

func BenchmarkE7BalancingCompetitive(b *testing.B) {
	benchExperiment(b, experiments.E7BalancingCompetitive)
}

func BenchmarkE7bCostAwareness(b *testing.B) {
	benchExperiment(b, experiments.E7bCostAwareness)
}

func BenchmarkE8MACCollision(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{100, 200}
		sc.Steps = 300
		return experiments.E8MACCollision(sc)
	})
}

func BenchmarkE9TopologyRouting(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{80, 160}
		sc.Steps = 300
		return experiments.E9TopologyRouting(sc)
	})
}

func BenchmarkE10RandomThroughput(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{80, 160}
		sc.Steps = 300
		return experiments.E10RandomThroughput(sc)
	})
}

func BenchmarkE11Honeycomb(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{80, 160}
		sc.Steps = 250
		return experiments.E11Honeycomb(sc)
	})
}

func BenchmarkE12Baselines(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{200}
		sc.Seeds = 1
		return experiments.E12Baselines(sc)
	})
}

// --- core primitive microbenches ---

func benchPoints(n int) pointset.Set {
	return pointset.Generate(pointset.KindUniform, n, 1)
}

func BenchmarkBuildTheta(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		pts := benchPoints(n)
		d := unitdisk.CriticalRange(pts) * 1.3
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				topology.BuildTheta(pts, topology.Config{Theta: math.Pi / 6, Range: d})
			}
		})
	}
}

func BenchmarkBuildThetaDistributed(b *testing.B) {
	pts := benchPoints(400)
	d := unitdisk.CriticalRange(pts) * 1.3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topology.BuildThetaDistributed(pts, topology.Config{Theta: math.Pi / 6, Range: d})
	}
}

func BenchmarkThetaPath(b *testing.B) {
	pts := benchPoints(400)
	d := unitdisk.CriticalRange(pts) * 1.3
	top := topology.BuildTheta(pts, topology.Config{Theta: math.Pi / 6, Range: d})
	gstar := unitdisk.Build(pts, d)
	edges := gstar.Edges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		top.ThetaPath(e.U, e.V)
	}
}

func BenchmarkInterferenceSets(b *testing.B) {
	for _, n := range []int{500, 2000} {
		pts := benchPoints(n)
		d := unitdisk.CriticalRange(pts) * 1.3
		top := topology.BuildTheta(pts, topology.Config{Theta: math.Pi / 6, Range: d})
		edges := top.N.Edges()
		m := interference.NewModel(interference.DefaultDelta)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Sets(pts, edges)
			}
		})
	}
}

// BenchmarkBalancerStepManyDests isolates the router hot path under many
// concurrent flows: n=1000 nodes, traffic spread over 10/100/1000 distinct
// destinations. The dense scan is O(edges × dests) per step, so the dests
// sweep exposes the quadratic blowup the sparse hot-slot index removes.
func BenchmarkBalancerStepManyDests(b *testing.B) {
	const n = 1000
	pts := benchPoints(n)
	d := unitdisk.CriticalRange(pts) * 1.3
	top := topology.BuildTheta(pts, topology.Config{Theta: math.Pi / 6, Range: d})
	var active []routing.ActiveEdge
	cost := top.EnergyCost(2)
	for _, e := range top.N.Edges() {
		active = append(active, routing.ActiveEdge{U: e.U, V: e.V, Cost: cost(e.U, e.V)})
	}
	for _, dests := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("dests%d", dests), func(b *testing.B) {
			bal := routing.New(n, routing.Params{T: 0, Gamma: 0, BufferSize: 50})
			rng := rand.New(rand.NewSource(1))
			inj := make([]routing.Injection, 0, 4*dests)
			for i := 0; i < 4*dests; i++ {
				inj = append(inj, routing.Injection{Node: rng.Intn(n), Dest: (i * 7919) % dests, Count: 1})
			}
			bal.Step(nil, inj)
			// Steady trickle keeps every destination slot live without
			// letting queues drain to empty over the bench loop.
			trickle := make([]routing.Injection, 0, dests/10+1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trickle = trickle[:0]
				for k := 0; k <= dests/10; k++ {
					trickle = append(trickle, routing.Injection{Node: rng.Intn(n), Dest: (i + k*11) % dests, Count: 1})
				}
				bal.Step(active, trickle)
			}
		})
	}
}

// BenchmarkMaxBenefit measures the per-pair benefit evaluation the
// honeycomb MAC performs for every candidate sender-receiver pair: with the
// dense layout it is O(dests) per call regardless of how many buffers are
// actually occupied at the sender.
func BenchmarkMaxBenefit(b *testing.B) {
	const n = 1000
	for _, dests := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("dests%d", dests), func(b *testing.B) {
			bal := routing.New(n, routing.Params{T: 0, Gamma: 0, BufferSize: 50})
			rng := rand.New(rand.NewSource(1))
			var inj []routing.Injection
			for i := 0; i < 4*dests; i++ {
				inj = append(inj, routing.Injection{Node: rng.Intn(n), Dest: (i * 7919) % dests, Count: 1})
			}
			bal.Step(nil, inj)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bal.MaxBenefit(i%n, (i+17)%n)
			}
		})
	}
}

func BenchmarkBalancerStep(b *testing.B) {
	pts := benchPoints(400)
	d := unitdisk.CriticalRange(pts) * 1.3
	top := topology.BuildTheta(pts, topology.Config{Theta: math.Pi / 6, Range: d})
	var active []routing.ActiveEdge
	cost := top.EnergyCost(2)
	for _, e := range top.N.Edges() {
		active = append(active, routing.ActiveEdge{U: e.U, V: e.V, Cost: cost(e.U, e.V)})
	}
	bal := routing.New(400, routing.Params{T: 0, Gamma: 0, BufferSize: 50})
	rng := rand.New(rand.NewSource(1))
	// Pre-load traffic toward three sinks.
	var inj []routing.Injection
	for i := 0; i < 300; i++ {
		inj = append(inj, routing.Injection{Node: rng.Intn(400), Dest: []int{7, 130, 311}[i%3], Count: 1})
	}
	bal.Step(nil, inj)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bal.Step(active, nil)
	}
}

// BenchmarkSimulate is the telemetry-overhead reference: a full
// random-MAC simulation with telemetry disabled. The observability layer's
// contract is that this benchmark shows no added allocations and no
// measurable ns/op regression versus an uninstrumented build; compare with
// BenchmarkSimulateTelemetry for the cost of live counters and with
// BenchmarkSimulateTraced for full step tracing.
func BenchmarkSimulate(b *testing.B) {
	cfg := sim.Config{
		Points: benchPoints(200),
		MAC:    sim.MACRandom,
		Router: routing.Params{T: 0, Gamma: 0, BufferSize: 40},
		Inject: sim.SinksInjector(200, []int{11, 97}, 1, 1<<30),
		Steps:  500,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		sim.Run(cfg)
	}
}

// BenchmarkSimulateTelemetry measures the same run with metrics recording
// enabled (counters, gauges, phase timers; no trace sink).
func BenchmarkSimulateTelemetry(b *testing.B) {
	cfg := sim.Config{
		Points:    benchPoints(200),
		MAC:       sim.MACRandom,
		Router:    routing.Params{T: 0, Gamma: 0, BufferSize: 40},
		Inject:    sim.SinksInjector(200, []int{11, 97}, 1, 1<<30),
		Steps:     500,
		Telemetry: telemetry.New(nil),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		sim.Run(cfg)
	}
}

// BenchmarkSimulateTraced measures the fully traced run: every router and
// MAC step emits an event into an in-memory sink.
func BenchmarkSimulateTraced(b *testing.B) {
	cfg := sim.Config{
		Points: benchPoints(200),
		MAC:    sim.MACRandom,
		Router: routing.Params{T: 0, Gamma: 0, BufferSize: 40},
		Inject: sim.SinksInjector(200, []int{11, 97}, 1, 1<<30),
		Steps:  500,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		cfg.Telemetry = telemetry.New(&telemetry.MemorySink{})
		sim.Run(cfg)
	}
}

func BenchmarkSimulationStep(b *testing.B) {
	pts := benchPoints(200)
	cfg := sim.Config{
		Points: pts,
		MAC:    sim.MACRandom,
		Router: routing.Params{T: 0, Gamma: 0, BufferSize: 40},
		Inject: sim.SinksInjector(200, []int{11, 97}, 1, 1<<30),
		Steps:  500,
		Seed:   1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		sim.Run(cfg)
	}
}

// BenchmarkIncrementalVsRebuild is the headline number of the dynamic
// maintenance subsystem: on a 2000-node uniform instance, repairing the
// topology after a single churn event (topology.Dynamic) versus rebuilding
// it from scratch (BuildTheta). The incremental path must touch only the
// 2D-ball around the event — a few percent of the nodes, reported as
// "touched/op" — and come out well over an order of magnitude faster.
func BenchmarkIncrementalVsRebuild(b *testing.B) {
	const n = 2000
	pts := benchPoints(n)
	d := unitdisk.CriticalRange(pts) * 1.3
	cfg := topology.Config{Theta: math.Pi / 6, Range: d}

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			topology.BuildTheta(pts, cfg)
		}
		b.ReportMetric(float64(n), "touched/op")
	})

	b.Run("incremental-move", func(b *testing.B) {
		dyn := topology.NewDynamic(pts, cfg)
		rng := rand.New(rand.NewSource(7))
		var touched int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := rng.Intn(dyn.N())
			to := dyn.Points()[v]
			to.X += (rng.Float64() - 0.5) * 0.02
			to.Y += (rng.Float64() - 0.5) * 0.02
			if dyn.HasNodeAt(to) {
				continue
			}
			st := dyn.Apply(topology.Event{Kind: topology.Move, Node: v, Pos: to})
			touched += int64(st.Touched)
		}
		b.ReportMetric(float64(touched)/float64(b.N), "touched/op")
	})

	b.Run("incremental-leave-join", func(b *testing.B) {
		dyn := topology.NewDynamic(pts, cfg)
		rng := rand.New(rand.NewSource(11))
		var touched int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := rng.Intn(dyn.N())
			p := dyn.Points()[v]
			st := dyn.Apply(topology.Event{Kind: topology.Leave, Node: v})
			touched += int64(st.Touched)
			p.X += (rng.Float64() - 0.5) * 0.01
			p.Y += (rng.Float64() - 0.5) * 0.01
			if dyn.HasNodeAt(p) {
				continue
			}
			st = dyn.Apply(topology.Event{Kind: topology.Join, Pos: p})
			touched += int64(st.Touched)
		}
		b.ReportMetric(float64(touched)/float64(2*b.N), "touched/op")
	})
}

// BenchmarkBuildThetaParallel measures the worker-pool from-scratch build
// across worker counts (the output is bit-identical for all of them; see
// TestBuildThetaParallelDeterminism).
func BenchmarkBuildThetaParallel(b *testing.B) {
	pts := benchPoints(2000)
	d := unitdisk.CriticalRange(pts) * 1.3
	cfg := topology.Config{Theta: math.Pi / 6, Range: d}
	for _, workers := range []int{1, 2, 4, 0} { // 0 = GOMAXPROCS
		name := fmt.Sprintf("workers%d", workers)
		if workers == 0 {
			name = "workersMax"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				topology.BuildThetaParallel(pts, cfg, workers)
			}
		})
	}
}

// BenchmarkBuildThetaTiled measures the tile-sharded from-scratch build at
// the scales it exists for. The transmission range is the standard
// Θ(√(log n / n)) connectivity radius (a fixed formula — CriticalRange's
// global MST would dominate setup at these sizes). The n=10⁶ variant lives
// behind -tags bigbench in bench_big_test.go.
func BenchmarkBuildThetaTiled(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		pts := benchPoints(n)
		d := 1.6 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
		cfg := topology.Config{Theta: math.Pi / 6, Range: d}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := topology.BuildThetaTiled(context.Background(), pts, cfg, topology.TiledConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000:
		return "n1600"
	case n >= 500:
		return "n800"
	case n >= 300:
		return "n400"
	case n >= 150:
		return "n200"
	default:
		return "n100"
	}
}

func BenchmarkE13ExactOPT(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{60}
		sc.Steps = 150
		return experiments.E13ExactOPT(sc)
	})
}

func BenchmarkE14GeoRouting(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{100, 200}
		return experiments.E14GeoRouting(sc)
	})
}

func BenchmarkE15PhysicalModel(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{100, 200}
		return experiments.E15PhysicalModel(sc)
	})
}

func BenchmarkE16Resilience(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{100}
		return experiments.E16Resilience(sc)
	})
}

func BenchmarkE17ThetaSweep(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{200}
		return experiments.E17ThetaSweep(sc)
	})
}

func BenchmarkGabriel(b *testing.B) {
	pts := benchPoints(400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		proximity.Gabriel(pts, 0)
	}
}

func BenchmarkDelaunay(b *testing.B) {
	pts := benchPoints(400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		proximity.Delaunay(pts)
	}
}

func BenchmarkDinicTimeExpanded(b *testing.B) {
	pts := benchPoints(60)
	d := unitdisk.CriticalRange(pts) * 1.3
	top := topology.BuildTheta(pts, topology.Config{Theta: math.Pi / 6, Range: d})
	var inj []optimal.Injection
	for s := 0; s < 50; s++ {
		inj = append(inj, optimal.Injection{Node: (s * 7) % 60, Step: s, Count: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimal.MaxDeliveries(optimal.Config{Graph: top.N, Dest: 5, Horizon: 200, Injections: inj})
	}
}

func BenchmarkGPSRRoute(b *testing.B) {
	pts := benchPoints(400)
	d := unitdisk.CriticalRange(pts) * 1.3
	gab := proximity.Gabriel(pts, d)
	r := georouting.NewPlanarRouter(gab, pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(i%400, (i*73+199)%400, 0)
	}
}

func BenchmarkE18ProtocolCost(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Sizes = []int{100}
		return experiments.E18ProtocolCost(sc)
	})
}

func BenchmarkE19ControlTraffic(b *testing.B) {
	benchExperiment(b, func(sc experiments.Scale) *experiments.Table {
		sc.Steps = 150
		return experiments.E19ControlTraffic(sc)
	})
}
