package toporouting

import (
	"context"
	"io"

	"toporouting/internal/telemetry"
)

// Telemetry is the observability scope of the stack: counters, gauges,
// histograms, named phase timers, and an optional trace sink. Pass one via
// SimulationOptions.Telemetry (or Options.Telemetry for bare topology
// builds) and every layer — ΘALG build phases, MAC contention, the
// (T,γ)-balancing router's per-step series, and the simulation loop —
// records into it. A nil *Telemetry disables all instrumentation at zero
// cost, and telemetry never changes simulation results.
type Telemetry = telemetry.Telemetry

// Metrics is a point-in-time snapshot of every telemetry instrument; see
// SimulationResult.Metrics and Telemetry.Snapshot.
type Metrics = telemetry.Metrics

// TraceEvent is one step-level trace record; the JSONL trace format is one
// JSON-encoded TraceEvent per line.
type TraceEvent = telemetry.Event

// TraceSink receives trace events; implementations must tolerate
// concurrent Emit calls.
type TraceSink = telemetry.Sink

// NewTelemetry returns a metrics-only telemetry scope (counters, gauges,
// histograms, phase timers; no trace events).
func NewTelemetry() *Telemetry { return telemetry.New(nil) }

// NewTracedTelemetry returns a telemetry scope that additionally streams
// step-level trace events into sink.
func NewTracedTelemetry(sink TraceSink) *Telemetry { return telemetry.New(sink) }

// NewJSONLTrace returns a buffered TraceSink writing one JSON event per
// line to w; Close flushes it (and closes w when w is an io.Closer).
func NewJSONLTrace(w io.Writer) TraceSink { return telemetry.NewJSONL(w) }

// CreateJSONLTrace creates (truncating) the file at path and returns a
// JSONL trace sink writing to it.
func CreateJSONLTrace(path string) (TraceSink, error) { return telemetry.CreateJSONL(path) }

// ReadJSONLTrace decodes a JSONL trace stream back into events — the
// inverse of NewJSONLTrace, for tools post-processing a run's trace.
func ReadJSONLTrace(r io.Reader) ([]TraceEvent, error) { return telemetry.ReadJSONL(r) }

// StartProfiling wires the standard Go profiling surfaces: a CPU profile
// into cpuProfile (when non-empty), a heap profile into memProfile written
// by the returned stop function, and a net/http/pprof + expvar server on
// pprofAddr for the life of the process. The cmd/ binaries expose these as
// -cpuprofile, -memprofile, and -pprof-addr.
func StartProfiling(cpuProfile, memProfile, pprofAddr string) (stop func() error, err error) {
	return telemetry.StartProfiles(cpuProfile, memProfile, pprofAddr)
}

// PublishExpvar exposes the scope's live metrics snapshot under the given
// expvar name, visible at /debug/vars when a pprof server is running.
func PublishExpvar(name string, t *Telemetry) { telemetry.PublishExpvar(name, t) }

// Tracer mints request-scoped span trees carried via context.Context; a
// nil *Tracer (and the nil *Span it returns) disables tracing at zero
// cost. See internal/telemetry's span documentation.
type Tracer = telemetry.Tracer

// Span is one timed operation inside a trace; nil spans are inert.
type Span = telemetry.Span

// Trace is a finished span tree as retained by a TraceRing and served at
// GET /debug/traces.
type Trace = telemetry.Trace

// TraceRing retains the K slowest traces plus a uniform sample.
type TraceRing = telemetry.TraceRing

// NewTracer returns a tracer retaining finished traces in ring (may be
// nil) and exporting span events through tel's trace sink when tracing.
func NewTracer(tel *Telemetry, ring *TraceRing) *Tracer { return telemetry.NewTracer(tel, ring) }

// NewTraceRing returns a trace retention ring keeping the slowK slowest
// traces and a uniform reservoir sample of sampleN (non-positive values
// select 32 and 64).
func NewTraceRing(slowK, sampleN int) *TraceRing { return telemetry.NewTraceRing(slowK, sampleN) }

// StartSpan begins a child span of the span carried by ctx (no-op, nil
// span when ctx carries none) — the hook instrumented layers use.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return telemetry.StartChild(ctx, name)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span { return telemetry.SpanFromContext(ctx) }

// WritePrometheus renders a snapshot of every instrument in t in the
// Prometheus text exposition format (GET /metrics on toporoutingd).
func WritePrometheus(w io.Writer, t *Telemetry) error { return telemetry.WritePrometheus(w, t) }
