package toporouting

import (
	"io"

	"toporouting/internal/telemetry"
)

// Telemetry is the observability scope of the stack: counters, gauges,
// histograms, named phase timers, and an optional trace sink. Pass one via
// SimulationOptions.Telemetry (or Options.Telemetry for bare topology
// builds) and every layer — ΘALG build phases, MAC contention, the
// (T,γ)-balancing router's per-step series, and the simulation loop —
// records into it. A nil *Telemetry disables all instrumentation at zero
// cost, and telemetry never changes simulation results.
type Telemetry = telemetry.Telemetry

// Metrics is a point-in-time snapshot of every telemetry instrument; see
// SimulationResult.Metrics and Telemetry.Snapshot.
type Metrics = telemetry.Metrics

// TraceEvent is one step-level trace record; the JSONL trace format is one
// JSON-encoded TraceEvent per line.
type TraceEvent = telemetry.Event

// TraceSink receives trace events; implementations must tolerate
// concurrent Emit calls.
type TraceSink = telemetry.Sink

// NewTelemetry returns a metrics-only telemetry scope (counters, gauges,
// histograms, phase timers; no trace events).
func NewTelemetry() *Telemetry { return telemetry.New(nil) }

// NewTracedTelemetry returns a telemetry scope that additionally streams
// step-level trace events into sink.
func NewTracedTelemetry(sink TraceSink) *Telemetry { return telemetry.New(sink) }

// NewJSONLTrace returns a buffered TraceSink writing one JSON event per
// line to w; Close flushes it (and closes w when w is an io.Closer).
func NewJSONLTrace(w io.Writer) TraceSink { return telemetry.NewJSONL(w) }

// CreateJSONLTrace creates (truncating) the file at path and returns a
// JSONL trace sink writing to it.
func CreateJSONLTrace(path string) (TraceSink, error) { return telemetry.CreateJSONL(path) }

// ReadJSONLTrace decodes a JSONL trace stream back into events — the
// inverse of NewJSONLTrace, for tools post-processing a run's trace.
func ReadJSONLTrace(r io.Reader) ([]TraceEvent, error) { return telemetry.ReadJSONL(r) }

// StartProfiling wires the standard Go profiling surfaces: a CPU profile
// into cpuProfile (when non-empty), a heap profile into memProfile written
// by the returned stop function, and a net/http/pprof + expvar server on
// pprofAddr for the life of the process. The cmd/ binaries expose these as
// -cpuprofile, -memprofile, and -pprof-addr.
func StartProfiling(cpuProfile, memProfile, pprofAddr string) (stop func() error, err error) {
	return telemetry.StartProfiles(cpuProfile, memProfile, pprofAddr)
}

// PublishExpvar exposes the scope's live metrics snapshot under the given
// expvar name, visible at /debug/vars when a pprof server is running.
func PublishExpvar(name string, t *Telemetry) { telemetry.PublishExpvar(name, t) }
