// Quickstart: build a ΘALG topology over random nodes, inspect the
// guarantees the paper proves for it (bounded degree, connectivity,
// constant energy-stretch), and route a few packets with the
// (T,γ)-balancing algorithm.
package main

import (
	"fmt"
	"log"

	"toporouting"
)

func main() {
	// 1. A random ad hoc deployment: 150 nodes uniform in the unit square.
	pts, err := toporouting.GeneratePoints("uniform", 150, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Topology control: the two-phase local algorithm ΘALG.
	nw, err := toporouting.BuildNetwork(pts, toporouting.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology N: %d nodes, %d edges\n", nw.N(), nw.NumEdges())
	fmt.Printf("  connected:      %v (Lemma 2.1)\n", nw.Connected())
	fmt.Printf("  max degree:     %d ≤ %d = 4π/θ (Lemma 2.1)\n", nw.MaxDegree(), nw.DegreeBound())
	es := nw.EnergyStretch(30)
	fmt.Printf("  energy stretch: %.3f (O(1) by Theorem 2.2)\n", es.Max)

	// 3. An energy-optimal route within the sparse topology.
	route := nw.MinEnergyRoute(0, 100)
	fmt.Printf("min-energy route 0→100: %d hops %v...\n", len(route)-1, route[:min(5, len(route))])

	// 4. Routing: the (T,γ)-balancing algorithm over the topology's
	// links. Offer every link each step (a perfect MAC) and push a
	// packet stream from node 0 to node 100.
	router, err := toporouting.NewRouter(nw.N(), toporouting.RouterOptions{
		T: 0, Gamma: 0, BufferSize: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	var links []toporouting.Link
	for _, e := range nw.Edges() {
		links = append(links, toporouting.Link{U: e[0], V: e[1], Cost: nw.EnergyCost(e[0], e[1])})
	}
	for step := 0; step < 3000; step++ {
		var inject []toporouting.Packets
		if step < 1200 {
			inject = []toporouting.Packets{{Node: 0, Dest: 100, Count: 1}}
		}
		router.Step(links, inject)
	}
	fmt.Printf("routing: delivered %d/%d packets, avg energy %.5f per delivery\n",
		router.Delivered(), router.Accepted(), router.AvgCostPerDelivery())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
