// Firezone: anycast delivery and geographic-routing baselines on one
// deployment. A wildfire-monitoring network has several exfiltration
// gateways; a sensor detecting fire needs its alarm at ANY gateway
// (anycast). The example routes alarms three ways:
//
//  1. the (T,γ)-balancing router with an anycast destination group —
//     the paper's lineage ([10]) generalizes to exactly this;
//  2. GPSR geographic routing (greedy + face recovery) to the *nearest*
//     gateway, the stateless baseline the paper cites;
//  3. plain greedy forwarding, which strands at voids.
//
// It also records per-packet latency through the balancing router.
package main

import (
	"fmt"
	"log"
	"math"

	"toporouting"
)

func main() {
	const nodes = 250
	pts, err := toporouting.GeneratePoints("uniform", nodes, 11)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := toporouting.BuildNetwork(pts, toporouting.Options{})
	if err != nil {
		log.Fatal(err)
	}
	gateways := []int{3, nodes / 2, nodes - 7}
	fmt.Printf("firezone: %d sensors, %d gateways, topology degree ≤ %d\n",
		nodes, len(gateways), nw.MaxDegree())

	// --- 1. anycast over the balancing router -------------------------
	router, err := toporouting.NewRouter(nodes, toporouting.RouterOptions{T: 0, BufferSize: 40})
	if err != nil {
		log.Fatal(err)
	}
	router.EnableLatencyTracking()
	var links []toporouting.Link
	for _, e := range nw.Edges() {
		links = append(links, toporouting.Link{U: e[0], V: e[1], Cost: nw.EnergyCost(e[0], e[1])})
	}
	alarms := 0
	for step := 0; step < 4000; step++ {
		if step < 2000 && step%4 == 0 {
			src := (step * 31) % nodes
			acc, _ := router.InjectAnycast(src, gateways, 1)
			alarms += acc
		}
		router.Step(links, nil)
	}
	lat := router.Latencies()
	fmt.Printf("balancing (anycast): %d/%d alarms delivered; latency p50=%d p95=%d steps\n",
		router.Delivered(), alarms, lat.P50, lat.P95)

	// --- 2 & 3. geographic routing to the nearest gateway -------------
	geo, err := toporouting.NewGeoRouter(pts, nw.Options().Range)
	if err != nil {
		log.Fatal(err)
	}
	nearestGateway := func(src int) int {
		best, bestD := gateways[0], math.Inf(1)
		for _, g := range gateways {
			dx := pts[src].X - pts[g].X
			dy := pts[src].Y - pts[g].Y
			if d := dx*dx + dy*dy; d < bestD {
				best, bestD = g, d
			}
		}
		return best
	}
	gpsrOK, greedyOK, trials := 0, 0, 0
	var gpsrEnergy float64
	for src := 0; src < nodes; src += 3 {
		gw := nearestGateway(src)
		if src == gw {
			continue
		}
		trials++
		if r, err := geo.Route(src, gw); err == nil && r.Delivered {
			gpsrOK++
			gpsrEnergy += r.Energy
		}
		if r, err := geo.Greedy(src, gw); err == nil && r.Delivered {
			greedyOK++
		}
	}
	fmt.Printf("GPSR (greedy+face):  %d/%d delivered, avg energy %.5f per alarm\n",
		gpsrOK, trials, gpsrEnergy/float64(gpsrOK))
	fmt.Printf("greedy only:         %d/%d delivered (%d stranded at voids)\n",
		greedyOK, trials, trials-greedyOK)
	fmt.Println("→ geographic routing is stateless but per-packet; the balancing router")
	fmt.Println("  additionally guarantees competitive throughput & cost under load, and")
	fmt.Println("  anycast falls out of the same buffer-height machinery.")
}
