// Sensorfield: a data-collection scenario from the paper's motivating
// applications (sensor networks). A field of battery-powered sensors
// reports readings to a few base stations. The example routes the same
// traffic twice — once over ΘALG's sparse topology N, once over the full
// transmission graph G* — showing that sparsifying to constant degree
// costs almost nothing in delivered throughput or energy per packet,
// which is the practical content of Theorem 2.2.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"toporouting"
)

const (
	sensors = 400
	steps   = 8000
	rate    = 2
)

func main() {
	pts, err := toporouting.GeneratePoints("clustered", sensors, 7)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := toporouting.BuildNetwork(pts, toporouting.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bases := []int{10, sensors / 2, sensors - 10}

	topoLinks := linksOf(nw, nw.Edges())
	denseLinks := linksOf(nw, nw.TransmissionEdges())
	fmt.Printf("sensor field: %d sensors → %d base stations\n", sensors, len(bases))
	fmt.Printf("  ΘALG topology N: %5d links (max degree %d), interference number %d\n",
		len(topoLinks), nw.MaxDegree(), nw.InterferenceNumber())
	fmt.Printf("  full graph G*:   %5d links, interference number %d\n",
		len(denseLinks), nw.TransmissionInterferenceNumber())
	fmt.Println("  → G*'s links interfere massively; a MAC can activate only ~m/I of them")
	fmt.Println("    per step, while N keeps I small (Lemma 2.10: O(log n) for random fields).")

	collect(nw, "N (sparse)", topoLinks, bases)
	collect(nw, "G* (dense, assumes impossible interference-free concurrency)", denseLinks, bases)

	st := nw.EnergyStretch(40)
	fmt.Printf("energy-stretch of N vs G*: max %.3f, mean %.3f (Theorem 2.2: O(1))\n", st.Max, st.Mean)
	fmt.Println("→ the constant-degree topology keeps energy-optimal routes available while")
	fmt.Println("  being actually schedulable; see experiments E6/E9 for the fair, ")
	fmt.Println("  interference-aware throughput comparison.")
}

// linksOf converts an edge list into router links with energy costs.
func linksOf(nw *toporouting.Network, edges [][2]int) []toporouting.Link {
	links := make([]toporouting.Link, 0, len(edges))
	for _, e := range edges {
		links = append(links, toporouting.Link{U: e[0], V: e[1], Cost: nw.EnergyCost(e[0], e[1])})
	}
	return links
}

// collect runs the balancing router over the given link set with the shared
// sensor-report traffic and prints the outcome.
func collect(nw *toporouting.Network, name string, links []toporouting.Link, bases []int) {
	router, err := toporouting.NewRouter(nw.N(), toporouting.RouterOptions{T: 0, Gamma: 0, BufferSize: 60})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < steps; step++ {
		var inject []toporouting.Packets
		if step < steps/4 {
			for i := 0; i < rate; i++ {
				inject = append(inject, toporouting.Packets{
					Node:  rng.Intn(nw.N()),
					Dest:  bases[rng.Intn(len(bases))],
					Count: 1,
				})
			}
		}
		router.Step(links, inject)
	}
	fmt.Printf("  %-11s delivered %5d/%5d  energy/delivery %.6f  residual queue %d\n",
		name, router.Delivered(), router.Accepted(), router.AvgCostPerDelivery(), router.Queued())
}
