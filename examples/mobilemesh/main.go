// Mobilemesh: a dynamic ad hoc network under node mobility and a
// contention-based MAC — the full stack of the paper. Nodes drift, the
// local ΘALG protocol rebuilds the topology (three broadcast rounds, no
// global coordination), the randomized symmetry-breaking MAC of
// Section 3.3 resolves interference with activation probability 1/(2·I_e),
// and the (T,γ)-balancing router keeps packets flowing toward a command
// post through every change.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"toporouting"
)

func main() {
	const (
		nodes = 150
		steps = 12000
	)
	pts, err := toporouting.GeneratePoints("uniform", nodes, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Show the cost of one distributed rebuild: the protocol is three
	// rounds of local broadcasts (Section 2.1).
	_, proto, err := toporouting.BuildNetworkDistributed(pts, toporouting.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one distributed topology build: %d + %d + %d messages (Position/Neighborhood/Connection)\n",
		proto.PositionMsgs, proto.NeighborhoodMsgs, proto.ConnectionMsgs)

	// The random MAC admits ~m/(2I) concurrent transmissions per step, so
	// inject at a matching trickle: one report every 10 steps.
	commandPost := nodes - 1
	traffic := func(step int, rng *rand.Rand) []toporouting.Packets {
		if step >= steps/2 || step%10 != 0 {
			return nil
		}
		return []toporouting.Packets{{Node: rng.Intn(nodes), Dest: commandPost, Count: 1}}
	}
	res, err := toporouting.Simulate(toporouting.SimulationOptions{
		Points:        pts,
		MAC:           toporouting.MACRandom,
		Router:        toporouting.RouterOptions{T: 0, Gamma: 0, BufferSize: 50},
		Traffic:       traffic,
		Steps:         steps,
		MobilityEvery: 1000,
		MobilityStep:  0.01,
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mobile mesh: %d nodes drifting, topology rebuilt %d times\n", nodes, res.Rebuilds)
	fmt.Printf("  interference bound I = %d → per-edge activation 1/(2I_e)\n", res.I)
	fmt.Printf("  reports delivered to command post: %d of %d accepted (%d still in flight)\n",
		res.Delivered, res.Accepted, res.Queued)
	fmt.Printf("  transmissions: %d, energy per delivery: %.5f\n", res.Moves, res.AvgCost)
	fmt.Println("→ throughput within O(1/I) of optimal on any topology (Theorem 3.3 + Cor. 3.4),")
	fmt.Println("  and I = O(log n) whp for random deployments (Lemma 2.10).")
}
