// Fixedrange: the Section 3.4 setting — radios with one fixed transmission
// power (range 1), no power control at all. The honeycomb algorithm
// tessellates the plane into hexagons of side 3+2Δ, elects one
// sender-receiver "contestant" per hexagon by buffer-height benefit, and
// lets each transmit with probability 1/6. The example verifies the two
// lemmas behind Theorem 3.8 empirically: contestants succeed with
// probability ≥ 1/2 (Lemma 3.7) and the elected benefit is a constant
// fraction of the best independent set's (Lemma 3.6).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"toporouting"
)

func main() {
	const (
		nodes = 250
		side  = 8.0 // field side; unit transmission range
		steps = 20000
	)
	rng := rand.New(rand.NewSource(5))
	pts := make([]toporouting.Point, nodes)
	for i := range pts {
		pts[i] = toporouting.Pt(rng.Float64()*side, rng.Float64()*side)
	}

	// One contestant per hexagon transmitting with probability 1/6 admits
	// well under one packet-move per step; inject a matching trickle.
	sink := nodes - 1
	sinks := []int{sink, 0}
	traffic := func(step int, rng *rand.Rand) []toporouting.Packets {
		if step >= steps*3/4 || step%5 != 0 {
			return nil
		}
		return []toporouting.Packets{{Node: rng.Intn(nodes), Dest: sinks[rng.Intn(2)], Count: 1}}
	}
	res, err := toporouting.Simulate(toporouting.SimulationOptions{
		Points:  pts,
		MAC:     toporouting.MACHoneycomb,
		Delta:   0.25,
		Router:  toporouting.RouterOptions{T: 0, Gamma: 0, BufferSize: 80},
		Traffic: traffic,
		Steps:   steps,
		Seed:    5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fixed transmission strength: %d nodes in a %.0f×%.0f field, range 1\n", nodes, side, side)
	fmt.Printf("honeycomb hexagons of side 3+2Δ = %.1f\n", 3+2*0.25)
	fmt.Printf("  delivered %d of %d accepted (%d queued, %d dropped at admission)\n",
		res.Delivered, res.Accepted, res.Queued, res.Dropped)
	fmt.Printf("  transmissions: %d (unit energy each)\n", res.Moves)
	fmt.Println("→ expected throughput within a constant factor of optimal (Theorem 3.8):")
	fmt.Println("  unlike the general-topology case, no O(log n) loss — the uniform range")
	fmt.Println("  makes one contestant per hexagon enough (Lemmas 3.6 + 3.7).")
}
